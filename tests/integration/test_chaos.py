"""Chaos smoke: the full stack under injected faults.

One scenario-shaped run — process pool, shared-memory store, pipelined
round loop — with a crash and a straggler injected mid-run.  It must
commit bit-identically to the fault-free sequential run, leak nothing in
``/dev/shm``, and surface the recovery work in the resilience ledger,
the metrics snapshot, and the execution report (mirrors the CI chaos
smoke cell).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import format_execution_report
from repro.fl.model_store import InProcessModelStore, SharedMemoryModelStore
from repro.fl.parallel import SequentialExecutor, make_executor
from repro.obs.trace import make_tracer
from tests.fl.test_parallel import (
    build_defended_sim,
    run_and_snapshot,
    shm_leftovers,
)

CHAOS = "crash@1.train;delay@3.validate.0=1.5"


class TestChaosSmoke:
    def test_pool_shm_pipelined_survives_crash_and_straggler(self):
        base_flat, base_records = run_and_snapshot(
            build_defended_sim(SequentialExecutor(), store=InProcessModelStore())
        )
        store = SharedMemoryModelStore()
        with store, make_executor(
            2, store=store, mode="pipelined", pipeline_depth=0,
            faults=CHAOS, task_deadline_s=0.5,
        ) as executor:
            flat, records = run_and_snapshot(
                build_defended_sim(executor, store=store)
            )
            stats = executor.resilience.as_dict()
        np.testing.assert_array_equal(base_flat, flat)
        assert base_records == records
        assert stats["retries"] > 0
        assert stats["straggler_reassignments"] >= 1
        assert shm_leftovers(store) == []

    def test_recovery_reaches_metrics_and_the_execution_report(self):
        from repro.fl.simulation import FederatedSimulation
        from tests.fl.test_parallel import make_world

        tracer = make_tracer(True)
        model, clients, _, config = make_world()
        with make_executor(2, engine="thread", store=InProcessModelStore(),
                           faults="crash@1.train") as executor:
            sim = FederatedSimulation(
                model.clone(), clients, config, np.random.default_rng(8),
                executor=executor, tracer=tracer,
            )
            records = sim.run(4)
            resilience = executor.resilience.as_dict()
        assert sum(r.retries for r in records) >= 1
        snapshot = tracer.metrics.snapshot()
        assert snapshot["resilience"]["retries"] >= 1
        assert snapshot["counters"]["resilience.retries"] >= 1
        report = format_execution_report(records, resilience=resilience)
        assert "resilience:" in report
        assert "recovery incidents" in report
        assert "retries: 1" in report

    def test_fault_free_report_has_no_resilience_section(self):
        with SequentialExecutor() as executor:
            records = build_defended_sim(
                executor, store=InProcessModelStore()
            ).run(4)
            resilience = executor.resilience.as_dict()
        report = format_execution_report(records, resilience=resilience)
        assert "resilience:" not in report
