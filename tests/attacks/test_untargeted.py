"""Unit tests for the untargeted poisoning attacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.untargeted import RandomUpdateClient, SignFlipClient
from repro.fl.client import HonestClient, LocalTrainingConfig
from repro.nn.models import make_mlp


class TestSignFlipClient:
    def test_attack_round_negates_and_boosts(self, tiny_dataset, rng):
        model = make_mlp(2, 3, rng, hidden=(8,))
        attacker = SignFlipClient(0, tiny_dataset, boost=5.0, attack_rounds={3})
        honest = HonestClient(1, tiny_dataset)
        honest_update = honest.produce_update(
            model, LocalTrainingConfig(), 3, np.random.default_rng(0)
        )
        attack_update = attacker.produce_update(
            model, LocalTrainingConfig(), 3, np.random.default_rng(0)
        )
        # same data, same rng stream: the attack is exactly -boost * honest
        np.testing.assert_allclose(attack_update, -5.0 * honest_update)

    def test_honest_outside_attack_rounds(self, tiny_dataset, rng):
        model = make_mlp(2, 3, rng, hidden=(8,))
        attacker = SignFlipClient(0, tiny_dataset, boost=5.0, attack_rounds={3})
        update = attacker.produce_update(
            model, LocalTrainingConfig(), 0, np.random.default_rng(0)
        )
        honest = HonestClient(1, tiny_dataset).produce_update(
            model, LocalTrainingConfig(), 0, np.random.default_rng(0)
        )
        np.testing.assert_allclose(update, honest)

    def test_is_malicious(self, tiny_dataset):
        assert SignFlipClient(0, tiny_dataset, 2.0, set()).is_malicious

    def test_invalid_boost(self, tiny_dataset):
        with pytest.raises(ValueError):
            SignFlipClient(0, tiny_dataset, boost=0.0, attack_rounds=set())

    def test_degrades_model_when_applied(self, tiny_dataset, rng):
        from repro.nn.losses import SoftmaxCrossEntropy
        from tests.conftest import train_briefly

        model = make_mlp(2, 3, rng, hidden=(8,))
        train_briefly(model, tiny_dataset, rng)
        loss = SoftmaxCrossEntropy()
        before = loss.forward(model.forward(tiny_dataset.x), tiny_dataset.y)
        attacker = SignFlipClient(0, tiny_dataset, boost=10.0, attack_rounds={0})
        update = attacker.produce_update(model, LocalTrainingConfig(), 0, rng)
        model.set_flat(model.get_flat() + update)
        after = loss.forward(model.forward(tiny_dataset.x), tiny_dataset.y)
        assert after > before


class TestRandomUpdateClient:
    def test_attack_update_has_requested_norm(self, tiny_dataset, rng):
        model = make_mlp(2, 3, rng, hidden=(8,))
        attacker = RandomUpdateClient(0, tiny_dataset, norm=7.5, attack_rounds={1})
        update = attacker.produce_update(model, LocalTrainingConfig(), 1, rng)
        assert np.linalg.norm(update) == pytest.approx(7.5)

    def test_honest_outside_attack_rounds(self, tiny_dataset, rng):
        model = make_mlp(2, 3, rng, hidden=(8,))
        attacker = RandomUpdateClient(0, tiny_dataset, norm=7.5, attack_rounds={1})
        update = attacker.produce_update(model, LocalTrainingConfig(), 0, rng)
        assert np.linalg.norm(update) != pytest.approx(7.5)

    def test_invalid_norm(self, tiny_dataset):
        with pytest.raises(ValueError):
            RandomUpdateClient(0, tiny_dataset, norm=-1.0, attack_rounds=set())
