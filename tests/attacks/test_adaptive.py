"""Unit tests for the defense-aware adaptive attacker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.adaptive import AdaptiveReplacementClient
from repro.attacks.model_replacement import ReplacementConfig
from repro.attacks.semantic_backdoor import SemanticBackdoor
from repro.fl.client import LocalTrainingConfig, local_train
from repro.nn.models import make_mlp


@pytest.fixture
def adaptive_setup(cifar_task, rng):
    """A trained global model with a snapshot history + an adaptive client."""
    backdoor = SemanticBackdoor(cifar_task)
    shard = cifar_task.sample(150, rng)
    model = make_mlp(cifar_task.flat_dim, 10, rng, hidden=(32,))
    local_train(model, shard, LocalTrainingConfig(epochs=10, lr=0.1), rng)
    history = []
    for version in range(10):
        local_train(model, shard, LocalTrainingConfig(epochs=1, lr=0.02), rng)
        history.append((version, model.clone()))
    config = ReplacementConfig(
        boost=10.0, poison_ratio=0.3, poison_samples=40, attack_epochs=3,
        attack_lr=0.05,
    )
    client = AdaptiveReplacementClient(
        0, shard, backdoor, config,
        attack_rounds={7},
        history_provider=lambda: history,
        max_trials=6,
    )
    return client, model, history


class TestAdaptiveClient:
    def test_invalid_args_rejected(self, adaptive_setup, cifar_task, rng):
        client, _, history = adaptive_setup
        backdoor = SemanticBackdoor(cifar_task)
        config = ReplacementConfig(boost=10.0)
        for kwargs in ({"max_trials": 0}, {"ratio_decay": 0.0}, {"boost_decay": 0.0}):
            with pytest.raises(ValueError):
                AdaptiveReplacementClient(
                    0, client.dataset, backdoor, config, {0},
                    history_provider=lambda: history, **kwargs,
                )

    def test_behaves_honestly_outside_attack_rounds(self, adaptive_setup, rng):
        client, model, _ = adaptive_setup
        update = client.produce_update(model, LocalTrainingConfig(), 0, rng)
        assert np.isfinite(update).all()
        assert 0 not in client.self_check_passed

    def test_attack_round_records_self_check(self, adaptive_setup, rng):
        client, model, _ = adaptive_setup
        client.produce_update(model, LocalTrainingConfig(), 7, rng)
        assert 7 in client.self_check_passed
        assert isinstance(client.self_check_passed[7], bool)

    def test_update_norm_not_larger_than_full_boost(self, adaptive_setup, rng):
        """Boost decay only ever weakens the submitted update."""
        client, model, _ = adaptive_setup
        update = client.produce_update(model, LocalTrainingConfig(), 7, rng)
        crafted = client.crafted_models[7]
        # the predicted global model stored is G + alpha (X - G); its distance
        # from G bounds the (unboosted) step the attacker aimed for
        assert np.isfinite(np.linalg.norm(update))

    def test_self_check_uses_attacker_data_only(self, adaptive_setup, rng):
        """The self-validator is bound to the attacker's own shard."""
        client, _, _ = adaptive_setup
        assert client._self_validator.dataset is client.dataset

    def test_stealthier_than_plain_replacement(self, adaptive_setup, cifar_task, rng):
        """Across trials, the adaptive update is no stronger than the full one."""
        client, model, history = adaptive_setup
        adaptive_update = client.produce_update(model, LocalTrainingConfig(), 7, rng)

        from repro.attacks.model_replacement import ModelReplacementClient

        plain = ModelReplacementClient(
            1, client.dataset, client.backdoor, client.replacement, {7}
        )
        plain_update = plain.produce_update(model, LocalTrainingConfig(), 7, rng)
        assert np.linalg.norm(adaptive_update) <= np.linalg.norm(plain_update) * 1.5
