"""Unit tests for repro.attacks.poisoning helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.poisoning import backdoor_accuracy, make_poison_blend
from repro.data.dataset import Dataset


def make_ds(n, label, rng, classes=4):
    return Dataset(rng.normal(size=(n, 3)), np.full(n, label), classes)


class TestMakePoisonBlend:
    def test_keeps_all_clean_samples(self, rng):
        clean = make_ds(40, 0, rng)
        poison = make_ds(10, 1, rng)
        blend = make_poison_blend(clean, poison, 0.2, rng)
        assert (blend.y == 0).sum() == 40

    def test_poison_ratio_approximate(self, rng):
        clean = make_ds(80, 0, rng)
        poison = make_ds(100, 1, rng)
        blend = make_poison_blend(clean, poison, 0.25, rng)
        ratio = (blend.y == 1).mean()
        assert abs(ratio - 0.25) < 0.05

    def test_small_poison_pool_resampled(self, rng):
        clean = make_ds(90, 0, rng)
        poison = make_ds(2, 1, rng)
        blend = make_poison_blend(clean, poison, 0.3, rng)
        assert (blend.y == 1).sum() > 2  # sampled with replacement

    def test_invalid_ratio_rejected(self, rng):
        clean, poison = make_ds(10, 0, rng), make_ds(5, 1, rng)
        with pytest.raises(ValueError):
            make_poison_blend(clean, poison, 0.0, rng)
        with pytest.raises(ValueError):
            make_poison_blend(clean, poison, 1.0, rng)

    def test_empty_inputs_rejected(self, rng):
        empty = Dataset(np.zeros((0, 3)), np.zeros(0, dtype=int), 4)
        with pytest.raises(ValueError):
            make_poison_blend(empty, make_ds(5, 1, rng), 0.2, rng)
        with pytest.raises(ValueError):
            make_poison_blend(make_ds(5, 0, rng), empty, 0.2, rng)

    def test_blend_is_shuffled(self, rng):
        clean = make_ds(50, 0, rng)
        poison = make_ds(50, 1, rng)
        blend = make_poison_blend(clean, poison, 0.4, rng)
        # poisoned samples should not all sit at the end
        first_half = blend.y[: len(blend) // 2]
        assert (first_half == 1).any()


class TestBackdoorAccuracy:
    def test_matches_eq1(self, rng, tiny_mlp):
        instances = Dataset(rng.normal(size=(30, 2)), np.zeros(30, dtype=int), 3)
        preds = tiny_mlp.predict(instances.x)
        expected = (preds == 2).mean()
        assert backdoor_accuracy(tiny_mlp, instances, 2) == pytest.approx(expected)

    def test_empty_instances_rejected(self, tiny_mlp):
        empty = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 3)
        with pytest.raises(ValueError):
            backdoor_accuracy(tiny_mlp, empty, 1)

    def test_bad_target_rejected(self, rng, tiny_mlp):
        instances = Dataset(rng.normal(size=(5, 2)), np.zeros(5, dtype=int), 3)
        with pytest.raises(ValueError):
            backdoor_accuracy(tiny_mlp, instances, 7)
