"""Unit tests for the model-replacement attack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.model_replacement import ModelReplacementClient, ReplacementConfig
from repro.attacks.semantic_backdoor import SemanticBackdoor
from repro.fl.client import LocalTrainingConfig
from repro.nn.models import make_mlp


@pytest.fixture
def attack_setup(cifar_task, rng):
    backdoor = SemanticBackdoor(cifar_task)
    shard = cifar_task.sample(120, rng)
    model = make_mlp(cifar_task.flat_dim, 10, rng, hidden=(32,))
    config = ReplacementConfig(boost=10.0, poison_ratio=0.3, poison_samples=40,
                               attack_epochs=3, attack_lr=0.05)
    client = ModelReplacementClient(0, shard, backdoor, config, attack_rounds={5})
    return client, model, backdoor


class TestReplacementConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"boost": 0.0},
            {"boost": 1.0, "poison_ratio": 0.0},
            {"boost": 1.0, "poison_ratio": 1.0},
            {"boost": 1.0, "poison_samples": 0},
            {"boost": 1.0, "attack_epochs": 0},
            {"boost": 1.0, "attack_lr": 0.0},
            {"boost": 1.0, "max_update_norm": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReplacementConfig(**kwargs)


class TestModelReplacementClient:
    def test_is_malicious(self, attack_setup):
        client, _, _ = attack_setup
        assert client.is_malicious

    def test_honest_outside_attack_rounds(self, attack_setup, rng):
        client, model, _ = attack_setup
        update = client.produce_update(model, LocalTrainingConfig(), 0, rng)
        # honest updates are unboosted: small norm relative to boosted ones
        boosted = client.produce_update(model, LocalTrainingConfig(), 5, rng)
        assert np.linalg.norm(boosted) > 3 * np.linalg.norm(update)

    def test_attack_round_scales_by_boost(self, attack_setup, rng):
        client, model, _ = attack_setup
        client.produce_update(model, LocalTrainingConfig(), 5, rng)
        crafted = client.crafted_models[5]
        expected = client.replacement.boost * (
            crafted.get_flat() - model.get_flat()
        )
        update = client.scale_update(model, crafted)
        np.testing.assert_allclose(update, expected)

    def test_replacement_property(self, attack_setup, rng):
        """With lambda = N/n, aggregating the boosted update replaces G."""
        client, model, _ = attack_setup
        from repro.fl.aggregation import apply_global_update

        update = client.produce_update(model, LocalTrainingConfig(), 5, rng)
        crafted = client.crafted_models[5]
        # one attacker alone in the round, N=100, lambda=N/n with n=10 -> boost 10
        new_flat = apply_global_update(
            model.get_flat(), update, num_selected=1, global_lr=10.0, num_clients=100
        )
        np.testing.assert_allclose(new_flat, crafted.get_flat(), atol=1e-9)

    def test_backdoor_learned_by_crafted_model(self, attack_setup, rng):
        client, model, backdoor = attack_setup
        from tests.conftest import train_briefly

        # give the global model basic competence first
        from repro.fl.client import LocalTrainingConfig as LTC, local_train

        local_train(model, client.dataset, LTC(epochs=8, lr=0.1), rng)
        crafted = client.craft_backdoored_model(model, LTC(), rng)
        assert backdoor.backdoor_accuracy(crafted, 150, rng) > 0.5

    def test_norm_clipping_respected(self, cifar_task, rng):
        backdoor = SemanticBackdoor(cifar_task)
        shard = cifar_task.sample(100, rng)
        model = make_mlp(cifar_task.flat_dim, 10, rng, hidden=(16,))
        config = ReplacementConfig(
            boost=50.0, poison_samples=20, attack_epochs=1, max_update_norm=1.0
        )
        client = ModelReplacementClient(0, shard, backdoor, config, {0})
        update = client.produce_update(model, LocalTrainingConfig(), 0, rng)
        assert np.linalg.norm(update) <= 1.0 + 1e-9
