"""Unit tests for the distributed backdoor attack (DBA) extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.dba import DistributedBackdoorCoordinator, TriggerPatchClient
from repro.data.dataset import Dataset
from repro.fl.client import LocalTrainingConfig
from repro.nn.models import make_mlp


@pytest.fixture
def coordinator():
    return DistributedBackdoorCoordinator(
        feature_indices=np.arange(8), trigger_value=1.0, target_label=2,
        num_attackers=4,
    )


class TestCoordinator:
    def test_patches_partition_the_trigger(self, coordinator):
        combined = np.sort(
            np.concatenate([coordinator.patch_for(i) for i in range(4)])
        )
        np.testing.assert_array_equal(combined, np.arange(8))

    def test_patch_rank_out_of_range(self, coordinator):
        with pytest.raises(ValueError):
            coordinator.patch_for(4)

    def test_full_trigger_stamps_features(self, coordinator, rng):
        x = rng.normal(size=(5, 20))
        stamped = coordinator.apply_full_trigger(x)
        np.testing.assert_array_equal(stamped[:, :8], 1.0)
        np.testing.assert_array_equal(stamped[:, 8:], x[:, 8:])

    def test_apply_does_not_mutate_input(self, coordinator, rng):
        x = rng.normal(size=(3, 20))
        original = x.copy()
        coordinator.apply_full_trigger(x)
        np.testing.assert_array_equal(x, original)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DistributedBackdoorCoordinator(np.array([]), 1.0, 0, 1)
        with pytest.raises(ValueError):
            DistributedBackdoorCoordinator(np.array([1, 1]), 1.0, 0, 1)
        with pytest.raises(ValueError):
            DistributedBackdoorCoordinator(np.arange(2), 1.0, 0, 3)

    def test_backdoor_accuracy_requires_nontarget_samples(self, coordinator, rng, tiny_mlp):
        only_target = Dataset(rng.normal(size=(5, 2)), np.full(5, 2), 3)
        with pytest.raises(ValueError):
            coordinator.backdoor_accuracy(tiny_mlp, only_target, rng)


class TestTriggerPatchClient:
    def test_poisons_with_own_patch_only(self, coordinator, rng):
        shard = Dataset(rng.normal(size=(40, 20)), rng.integers(0, 3, 40), 3)
        client = TriggerPatchClient(0, shard, coordinator, attacker_rank=1,
                                    attack_rounds={0}, boost=5.0)
        poisoned = client._poison_with_patch(rng)
        own = coordinator.patch_for(1)
        other = coordinator.patch_for(2)
        np.testing.assert_array_equal(poisoned.x[:, own], 1.0)
        assert not np.allclose(poisoned.x[:, other], 1.0)
        assert np.all(poisoned.y == 2)

    def test_attack_round_update_is_boosted(self, coordinator, rng):
        shard = Dataset(rng.normal(size=(60, 20)), rng.integers(0, 3, 60), 3)
        model = make_mlp(20, 3, rng, hidden=(8,))
        client = TriggerPatchClient(0, shard, coordinator, attacker_rank=0,
                                    attack_rounds={3}, boost=5.0)
        honest = client.produce_update(model, LocalTrainingConfig(), 0, rng)
        attack = client.produce_update(model, LocalTrainingConfig(), 3, rng)
        assert np.linalg.norm(attack) > np.linalg.norm(honest)

    def test_combined_trigger_backdoors_model(self, coordinator, rng):
        """Training on all patches makes the model sensitive to the full trigger."""
        x = rng.normal(size=(400, 20))
        y = rng.integers(0, 3, 400)
        shard = Dataset(x, y, 3)
        model = make_mlp(20, 3, rng, hidden=(16,))
        # Simulate the union of all attackers' poisoned data + clean data.
        from repro.nn.optim import SGD
        from repro.nn.losses import SoftmaxCrossEntropy

        poisoned_parts = []
        for rank in range(4):
            patch = coordinator.patch_for(rank)
            xp = x[rng.choice(400, 100)].copy()
            xp[:, patch] = coordinator.trigger_value
            poisoned_parts.append(Dataset(xp, np.full(100, 2), 3))
        blend = Dataset.concat([shard] + poisoned_parts).shuffled(rng)
        loss = SoftmaxCrossEntropy()
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        for _ in range(40):
            model.zero_grad()
            loss.forward(model.forward(blend.x, train=True), blend.y)
            model.backward(loss.backward())
            opt.step()
        acc = coordinator.backdoor_accuracy(model, shard, rng)
        assert acc > 0.7

    def test_invalid_boost_rejected(self, coordinator, rng):
        shard = Dataset(rng.normal(size=(10, 20)), rng.integers(0, 3, 10), 3)
        with pytest.raises(ValueError):
            TriggerPatchClient(0, shard, coordinator, 0, {0}, boost=0.0)
