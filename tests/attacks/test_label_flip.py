"""Unit tests for the FEMNIST label-flip backdoor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.label_flip import LabelFlipBackdoor, pick_label_flip_classes
from repro.data.dataset import Dataset


class TestPickClasses:
    def test_source_is_most_frequent(self, rng):
        y = np.array([0] * 10 + [1] * 30 + [2] * 5)
        ds = Dataset(rng.normal(size=(45, 2)), y, 3)
        source, target = pick_label_flip_classes(ds, rng)
        assert source == 1
        assert target in (0, 2)

    def test_target_never_equals_source(self, rng):
        y = np.array([0] * 20 + [1] * 5)
        ds = Dataset(rng.normal(size=(25, 2)), y, 2)
        for _ in range(10):
            source, target = pick_label_flip_classes(ds, rng)
            assert source != target

    def test_empty_dataset_rejected(self, rng):
        ds = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 3)
        with pytest.raises(ValueError):
            pick_label_flip_classes(ds, rng)


class TestLabelFlipBackdoor:
    def test_poisoned_data_relabelled(self, femnist_task, rng):
        backdoor = LabelFlipBackdoor(femnist_task, 3, 5, attacker_writer=0)
        poison = backdoor.poisoned_training_data(20, rng)
        assert np.all(poison.y == 5)

    def test_test_instances_carry_source_label(self, femnist_task, rng):
        backdoor = LabelFlipBackdoor(femnist_task, 3, 5)
        instances = backdoor.backdoor_test_instances(25, rng)
        assert np.all(instances.y == 3)
        assert len(instances) == 25

    def test_same_source_target_rejected(self, femnist_task):
        with pytest.raises(ValueError):
            LabelFlipBackdoor(femnist_task, 3, 3)

    def test_out_of_range_labels_rejected(self, femnist_task):
        with pytest.raises(ValueError):
            LabelFlipBackdoor(femnist_task, 99, 1)
        with pytest.raises(ValueError):
            LabelFlipBackdoor(femnist_task, 1, 99)

    def test_attacker_writer_styles_poison(self, femnist_task, rng):
        """With a fixed attacker writer, poison reflects that writer's style."""
        backdoor = LabelFlipBackdoor(femnist_task, 2, 4, attacker_writer=1)
        a = backdoor.poisoned_training_data(100, np.random.default_rng(0))
        direct = femnist_task.sample_class_for_writer(1, 2, 100, np.random.default_rng(0))
        np.testing.assert_allclose(a.x.mean(axis=0), direct.x.mean(axis=0), atol=0.15)
