"""Unit tests for the CIFAR semantic backdoor task."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.semantic_backdoor import SemanticBackdoor
from repro.data.synthetic_cifar import (
    CIFAR_BACKDOOR_SOURCE_CLASS,
    CIFAR_BACKDOOR_TARGET_CLASS,
)


class TestSemanticBackdoor:
    def test_default_target_is_bird(self, cifar_task):
        assert SemanticBackdoor(cifar_task).target_label == CIFAR_BACKDOOR_TARGET_CLASS

    def test_poisoned_data_carries_target_label(self, cifar_task, rng):
        backdoor = SemanticBackdoor(cifar_task)
        poison = backdoor.poisoned_training_data(20, rng)
        assert np.all(poison.y == backdoor.target_label)

    def test_test_instances_carry_true_label(self, cifar_task, rng):
        backdoor = SemanticBackdoor(cifar_task)
        instances = backdoor.backdoor_test_instances(20, rng)
        assert np.all(instances.y == CIFAR_BACKDOOR_SOURCE_CLASS)

    def test_poison_and_test_instances_same_feature(self, cifar_task, rng):
        """Poison and evaluation instances come from the same distribution."""
        backdoor = SemanticBackdoor(cifar_task)
        poison = backdoor.poisoned_training_data(400, rng)
        test = backdoor.backdoor_test_instances(400, rng)
        np.testing.assert_allclose(
            poison.x.mean(axis=0), test.x.mean(axis=0), atol=0.12
        )

    def test_invalid_target_rejected(self, cifar_task):
        with pytest.raises(ValueError):
            SemanticBackdoor(cifar_task, target_label=99)

    def test_backdoor_accuracy_of_clean_model_low(self, cifar_task, rng):
        """An honestly trained model does not exhibit the backdoor."""
        from repro.nn.models import make_mlp
        from tests.conftest import train_briefly

        train = cifar_task.sample(1500, rng)
        model = make_mlp(cifar_task.flat_dim, 10, rng, hidden=(32,))
        # brief minibatch training
        from repro.fl.client import LocalTrainingConfig, local_train

        local_train(model, train, LocalTrainingConfig(epochs=6, lr=0.1), rng)
        backdoor = SemanticBackdoor(cifar_task)
        assert backdoor.backdoor_accuracy(model, 200, rng) < 0.3
