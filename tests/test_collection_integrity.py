"""Guards against the test-collection failure that broke the seed repo.

Two test modules shared the basename ``test_metrics.py`` while the test
tree had no package ``__init__.py`` files, so pytest's rootdir-relative
import machinery mapped both files onto one module name and aborted the
whole collection with an import-file mismatch — zero tests ran.

These tests enforce the invariants that keep collection healthy:

1. every directory under ``tests/`` that contains test modules is a real
   package (has ``__init__.py``), and
2. every test module imports under its fully-qualified package name to the
   file it lives in (no shadowing between same-basename modules).
"""

from __future__ import annotations

import importlib
from pathlib import Path

TESTS_ROOT = Path(__file__).resolve().parent


def _test_modules() -> list[Path]:
    return sorted(TESTS_ROOT.rglob("test_*.py"))


def test_every_test_dir_is_a_package():
    missing = {
        str(path.parent.relative_to(TESTS_ROOT.parent))
        for path in _test_modules()
        if not (path.parent / "__init__.py").exists()
    }
    assert not missing, (
        f"test directories without __init__.py: {sorted(missing)}; "
        "pytest then imports their modules by basename, and duplicate "
        "basenames abort collection"
    )


def test_every_test_module_imports_to_its_own_file():
    assert _test_modules(), "no test modules found — wrong rootdir?"
    for path in _test_modules():
        relative = path.relative_to(TESTS_ROOT.parent)
        dotted = ".".join(relative.with_suffix("").parts)
        module = importlib.import_module(dotted)
        assert Path(module.__file__).resolve() == path, (
            f"module {dotted!r} resolved to {module.__file__}, not {path}; "
            "a same-basename module is shadowing it"
        )
