"""Tests for the experiment runner and sweeps (fast configs)."""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    run_adaptive_experiment,
    run_detection_experiment,
    sweep_lookback,
    sweep_quorum,
)


class TestRunDetectionExperiment:
    def test_aggregates_over_seeds(self, fast_config):
        stats = run_detection_experiment(fast_config, seeds=(0, 1))
        assert stats.num_runs == 2
        assert 0.0 <= stats.fp_mean <= 1.0
        assert 0.0 <= stats.fn_mean <= 1.0

    def test_detection_works_in_fast_config(self, fast_config):
        stats = run_detection_experiment(fast_config, seeds=(0,))
        assert stats.fn_mean == 0.0

    def test_workers_override_is_a_pure_throughput_knob(self, fast_config):
        """The runner-level workers override must not change results."""
        sequential = run_detection_experiment(fast_config, seeds=(0,))
        parallel = run_detection_experiment(fast_config, seeds=(0,), workers=2)
        assert parallel == sequential

    def test_seed_fanout_is_a_pure_throughput_knob(self, fast_config):
        """Per-seed process fan-out must aggregate identically to a serial
        seed loop (seeds are independent and deterministic)."""
        serial = run_detection_experiment(fast_config, seeds=(0, 1))
        fanned = run_detection_experiment(fast_config, seeds=(0, 1), seed_workers=2)
        assert fanned == serial


class TestSweeps:
    def test_sweep_lookback_covers_grid(self, fast_config):
        results = sweep_lookback(
            fast_config, lookbacks=(6, 8), splits=(0.9,), modes=("clients",),
            seeds=(0,),
        )
        assert set(results) == {(6, 0.9, "clients"), (8, 0.9, "clients")}

    def test_sweep_seed_fanout_matches_serial(self, fast_config):
        """Grid-level seed fan-out must reproduce the serial sweep."""
        kwargs = dict(
            lookbacks=(6, 8), splits=(0.9,), modes=("clients",), seeds=(0, 1)
        )
        serial = sweep_lookback(fast_config, **kwargs)
        fanned = sweep_lookback(fast_config, **kwargs, seed_workers=2)
        assert fanned == serial

    def test_sweep_quorum_replicates_server_stats(self, fast_config):
        results = sweep_quorum(
            fast_config, quorums=(2, 3), splits=(0.9,),
            modes=("clients", "server"), seeds=(0,),
        )
        assert results[(2, 0.9, "server")] is results[(3, 0.9, "server")]
        assert (2, 0.9, "clients") in results


class TestAdaptiveExperiment:
    def test_result_fields(self, fast_config):
        result = run_adaptive_experiment(
            fast_config.with_updates(adaptive_max_trials=3), seeds=(0,)
        )
        assert result.non_adaptive.num_runs == 1
        assert result.adaptive.num_runs == 1
        assert len(result.adaptive_reject_votes) == len(fast_config.attack_rounds)
        assert 0.0 <= result.self_check_pass_rate <= 1.0
