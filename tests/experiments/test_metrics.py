"""Unit tests for detection bookkeeping."""

from __future__ import annotations

import pytest

from repro.experiments.metrics import (
    DetectionStats,
    aggregate_stats,
    detection_stats,
)
from repro.fl.simulation import DefenseDecision, RoundRecord


def record(round_idx: int, accepted: bool) -> RoundRecord:
    return RoundRecord(
        round_idx=round_idx,
        contributor_ids=[],
        malicious_present=False,
        accepted=accepted,
        decision=DefenseDecision(accepted=accepted),
    )


class TestDetectionStats:
    def test_classification_of_rounds(self):
        records = [
            record(10, accepted=True),   # clean accepted -> TN
            record(11, accepted=False),  # clean rejected -> FP
            record(12, accepted=False),  # poisoned rejected -> TP
            record(13, accepted=True),   # poisoned accepted -> FN
        ]
        stats = detection_stats(records, injection_rounds={12, 13}, defense_start=10)
        assert (stats.true_negatives, stats.false_positives) == (1, 1)
        assert (stats.true_positives, stats.false_negatives) == (1, 1)

    def test_pre_defense_rounds_ignored(self):
        records = [record(0, accepted=False), record(10, accepted=True)]
        stats = detection_stats(records, injection_rounds=set(), defense_start=5)
        assert stats.false_positives == 0
        assert stats.true_negatives == 1

    def test_rates(self):
        stats = DetectionStats(
            true_positives=3, false_positives=1, true_negatives=9, false_negatives=1
        )
        assert stats.fp_rate == pytest.approx(0.1)
        assert stats.fn_rate == pytest.approx(0.25)
        assert stats.detection_accuracy == pytest.approx(12 / 14)

    def test_rates_with_no_rounds(self):
        stats = DetectionStats(0, 0, 0, 0)
        assert stats.fp_rate == 0.0
        assert stats.fn_rate == 0.0
        assert stats.detection_accuracy == 0.0


class TestAggregateStats:
    def test_mean_and_std(self):
        runs = [
            DetectionStats(1, 0, 9, 1),  # fn 0.5, fp 0.0
            DetectionStats(2, 1, 9, 0),  # fn 0.0, fp 0.1
        ]
        agg = aggregate_stats(runs)
        assert agg.fn_mean == pytest.approx(0.25)
        assert agg.fp_mean == pytest.approx(0.05)
        assert agg.num_runs == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_stats([])

    def test_str_rendering(self):
        agg = aggregate_stats([DetectionStats(1, 0, 9, 0)])
        assert "FP" in str(agg) and "FN" in str(agg)
