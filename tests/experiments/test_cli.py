"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub_actions = [
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        ]
        commands = set(sub_actions[0].choices)
        assert {"detect", "table1", "fig3", "table2", "fig2", "fig4"} <= commands

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect"])
        assert args.dataset == "cifar"
        assert args.lookback == 20
        assert args.quorum == 5

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--dataset", "mnist"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_execution_mode_flags(self):
        args = build_parser().parse_args(
            ["detect", "--exec-mode", "pipelined", "--pipeline-depth", "3"]
        )
        assert args.exec_mode == "pipelined"
        assert args.pipeline_depth == 3
        assert build_parser().parse_args(["detect"]).exec_mode == "sync"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--exec-mode", "warp"])


class TestExecution:
    def test_detect_runs_and_prints(self, capsys):
        code = main(["detect", "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FP" in out and "FN" in out

    def test_detect_server_mode(self, capsys):
        code = main(
            ["detect", "--seeds", "1", "--mode", "server", "--lookback", "10"]
        )
        assert code == 0
        assert "mode=server" in capsys.readouterr().out
