"""Shared fast configs for experiment tests."""

from __future__ import annotations

import pytest

from repro.experiments.configs import ExperimentConfig


@pytest.fixture
def fast_config() -> ExperimentConfig:
    """A detection experiment small enough for unit tests (~1s)."""
    return ExperimentConfig(
        dataset="cifar",
        client_share=0.9,
        num_clients=12,
        pool_size=900,
        test_size=150,
        clients_per_round=5,
        pretrain_rounds=35,
        pretrain_lr=0.1,
        lookback=8,
        quorum=3,
        num_validators=5,
        defense_start=10,
        total_rounds=20,
        attack_rounds=(13, 17),
        poison_samples=40,
        attack_epochs=4,
        hidden=(32,),
    )


@pytest.fixture
def fast_femnist_config(fast_config) -> ExperimentConfig:
    return fast_config.with_updates(dataset="femnist", client_share=0.97)
