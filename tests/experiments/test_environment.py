"""Unit tests for experiment environment construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.label_flip import LabelFlipBackdoor
from repro.attacks.semantic_backdoor import SemanticBackdoor
from repro.experiments.environment import build_environment, clear_environment_cache
from repro.nn.metrics import accuracy


class TestCifarEnvironment:
    def test_layout(self, fast_config):
        env = build_environment(fast_config, seed=0)
        assert len(env.shards) == fast_config.num_clients
        assert isinstance(env.backdoor, SemanticBackdoor)
        # client/server split roughly honours the share
        total_client = sum(len(s) for s in env.shards)
        observed_share = total_client / (total_client + len(env.server_data))
        assert abs(observed_share - fast_config.client_share) < 0.05

    def test_stable_model_is_competent(self, fast_config):
        env = build_environment(fast_config, seed=0)
        acc = accuracy(env.test_data.y, env.stable_model.predict(env.test_data.x))
        assert acc > 0.75

    def test_cache_returns_same_object(self, fast_config):
        a = build_environment(fast_config, seed=0)
        b = build_environment(fast_config, seed=0)
        assert a is b

    def test_cache_distinguishes_seeds(self, fast_config):
        a = build_environment(fast_config, seed=0)
        b = build_environment(fast_config, seed=1)
        assert a is not b

    def test_cache_bypass(self, fast_config):
        a = build_environment(fast_config, seed=0)
        b = build_environment(fast_config, seed=0, cache=False)
        assert a is not b

    def test_clear_cache(self, fast_config):
        a = build_environment(fast_config, seed=0)
        clear_environment_cache()
        b = build_environment(fast_config, seed=0)
        assert a is not b


class TestFemnistEnvironment:
    def test_layout(self, fast_femnist_config):
        env = build_environment(fast_femnist_config, seed=0)
        assert len(env.shards) == fast_femnist_config.num_clients
        assert isinstance(env.backdoor, LabelFlipBackdoor)
        assert all(len(s) >= 10 for s in env.shards)

    def test_label_flip_source_is_attackers_top_class(self, fast_femnist_config):
        env = build_environment(fast_femnist_config, seed=0)
        attacker_counts = env.shards[env.attacker_id].class_counts()
        assert env.backdoor.source_label == int(np.argmax(attacker_counts))

    def test_writer_shards_are_non_iid(self, fast_femnist_config):
        env = build_environment(fast_femnist_config, seed=0)
        dists = np.stack([s.class_distribution() for s in env.shards])
        assert dists.std(axis=0).mean() > 0.02
