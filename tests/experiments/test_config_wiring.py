"""Wiring tests: config knobs actually reach the components they control."""

from __future__ import annotations

import pytest

from repro.experiments.environment import build_environment
from repro.experiments.scenarios import _build_defense


class TestValidatorKnobWiring:
    def test_slack_reaches_validators(self, fast_config):
        env = build_environment(fast_config, seed=0)
        config = fast_config.with_updates(validator_slack=1.4)
        defense = _build_defense(config, env)
        some_validator = defense.validator_pool.get(
            next(iter(range(1, config.num_clients)))
        )
        assert some_validator.threshold_slack == 1.4
        assert defense.server_validator.threshold_slack == 1.4

    def test_features_reach_validators(self, fast_config):
        env = build_environment(fast_config, seed=0)
        config = fast_config.with_updates(validator_features="source")
        defense = _build_defense(config, env)
        assert defense.server_validator.features == "source"

    def test_normalize_reaches_validators(self, fast_config):
        env = build_environment(fast_config, seed=0)
        config = fast_config.with_updates(validator_normalize="class")
        defense = _build_defense(config, env)
        assert defense.server_validator.normalize == "class"

    def test_dropout_reaches_defense_config(self, fast_config):
        env = build_environment(fast_config, seed=0)
        config = fast_config.with_updates(validator_dropout=0.25)
        defense = _build_defense(config, env)
        assert defense.config.dropout_rate == 0.25

    def test_quorum_and_lookback_reach_defense(self, fast_config):
        env = build_environment(fast_config, seed=0)
        config = fast_config.with_updates(quorum=4, lookback=6)
        defense = _build_defense(config, env)
        assert defense.config.quorum == 4
        assert defense.config.lookback == 6
        assert defense.history.max_models == 7


class TestDropoutScenario:
    def test_scenario_with_dropout_still_detects(self, fast_config):
        from repro.experiments.metrics import detection_stats
        from repro.experiments.scenarios import run_stable_scenario

        config = fast_config.with_updates(validator_dropout=0.2)
        result = run_stable_scenario(config, seed=0)
        stats = detection_stats(
            result.records, result.injection_rounds, result.defense_start
        )
        # a 20% silent-validator rate should not break detection at q=3
        assert stats.fn_rate <= 0.5


class TestInvalidValidatorConfig:
    def test_invalid_features_caught_at_build(self, fast_config):
        env = build_environment(fast_config, seed=0)
        with pytest.raises(ValueError):
            _build_defense(fast_config.with_updates(validator_features="bogus"), env)

    def test_invalid_slack_caught_at_build(self, fast_config):
        env = build_environment(fast_config, seed=0)
        with pytest.raises(ValueError):
            _build_defense(fast_config.with_updates(validator_slack=0.5), env)