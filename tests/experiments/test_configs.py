"""Unit tests for repro.experiments.configs."""

from __future__ import annotations

import pytest

from repro.experiments.configs import (
    CIFAR_SPLITS,
    FEMNIST_SPLITS,
    PAPER_ATTACK_ROUNDS,
    ExperimentConfig,
    paper_config,
)


class TestExperimentConfig:
    def test_defaults_match_paper_structure(self):
        config = ExperimentConfig()
        assert config.clients_per_round == 10
        assert config.num_validators == 10
        assert config.local_epochs == 2
        assert config.lookback == 20
        assert config.defense_start == 20
        assert config.attack_rounds == PAPER_ATTACK_ROUNDS

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dataset": "mnist"},
            {"client_share": 0.0},
            {"client_share": 1.0},
            {"defense_start": 50, "total_rounds": 50},
            {"attack_rounds": (99,)},
            {"execution_mode": "turbo"},
            {"pipeline_depth": -1},
            {"model_store": "quantum"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_environment_key_ignores_engine_knobs(self):
        """workers/store/mode/depth are pure throughput knobs: engines
        commit bit-identical models, so cached environments are shared."""
        base = ExperimentConfig()
        assert base.environment_key(0) == base.with_updates(
            workers=4, model_store="shared",
            execution_mode="pipelined", pipeline_depth=3,
        ).environment_key(0)

    def test_with_updates_returns_modified_copy(self):
        config = ExperimentConfig()
        updated = config.with_updates(lookback=30)
        assert updated.lookback == 30
        assert config.lookback == 20

    def test_environment_key_ignores_defense_params(self):
        base = ExperimentConfig()
        assert base.environment_key(0) == base.with_updates(
            lookback=30, quorum=7, mode="server"
        ).environment_key(0)

    def test_environment_key_tracks_data_params(self):
        base = ExperimentConfig()
        assert base.environment_key(0) != base.with_updates(
            pool_size=100
        ).environment_key(0)
        assert base.environment_key(0) != base.environment_key(1)

    def test_paper_splits_defined(self):
        assert len(CIFAR_SPLITS) == 3
        assert len(FEMNIST_SPLITS) == 3
        assert all(0 < s < 1 for s in CIFAR_SPLITS + FEMNIST_SPLITS)

    def test_paper_config_helper(self):
        config = paper_config("femnist", 0.99, lookback=10)
        assert config.dataset == "femnist"
        assert config.lookback == 10
