"""Error paths and edge cases of the scenario builders."""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import _build_clients, _build_defense
from repro.experiments.environment import build_environment
from repro.fl.client import HonestClient


class TestBuildDefense:
    def test_server_mode_has_no_pool(self, fast_config):
        env = build_environment(fast_config, seed=0)
        defense = _build_defense(fast_config.with_updates(mode="server"), env)
        assert defense.validator_pool is None
        assert defense.server_validator is not None

    def test_clients_mode_has_no_server_validator(self, fast_config):
        env = build_environment(fast_config, seed=0)
        defense = _build_defense(fast_config.with_updates(mode="clients"), env)
        assert defense.server_validator is None

    def test_attacker_excluded_from_pool(self, fast_config):
        env = build_environment(fast_config, seed=0)
        defense = _build_defense(fast_config, env)
        assert env.attacker_id not in defense.validator_pool

    def test_malicious_validators_injected(self, fast_config):
        from repro.core.validation import ConstantVoteValidator

        env = build_environment(fast_config, seed=0)
        config = fast_config.with_updates(
            malicious_validators=2, malicious_vote_strategy="shield"
        )
        defense = _build_defense(config, env)
        liars = [
            cid
            for cid in range(config.num_clients)
            if cid in defense.validator_pool
            and isinstance(defense.validator_pool.get(cid), ConstantVoteValidator)
        ]
        assert len(liars) == 2


class TestBuildClients:
    def test_adaptive_without_defense_rejected(self, fast_config):
        env = build_environment(fast_config, seed=0)
        with pytest.raises(ValueError):
            _build_clients(
                fast_config.with_updates(adaptive=True), env, None, 1.0
            )

    def test_single_attacker_rest_honest(self, fast_config):
        env = build_environment(fast_config, seed=0)
        clients = _build_clients(fast_config, env, None, 1.0)
        malicious = [c for c in clients if c.is_malicious]
        assert len(malicious) == 1
        assert malicious[0].client_id == env.attacker_id
        assert all(isinstance(c, HonestClient) for c in clients if not c.is_malicious)

    def test_boost_matches_global_lr(self, fast_config):
        env = build_environment(fast_config, seed=0)
        clients = _build_clients(fast_config, env, None, effective_global_lr=2.0)
        attacker = clients[env.attacker_id]
        assert attacker.replacement.boost == fast_config.num_clients / 2.0
