"""Unit tests for paper-style text reports."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.metrics import AggregateStats
from repro.experiments.reporting import (
    format_execution_report,
    format_quorum_series,
    format_series,
    format_table1,
    format_table2,
    format_vote_distribution,
)


def stats(fp=0.1, fn=0.0):
    return AggregateStats(fp_mean=fp, fp_std=0.01, fn_mean=fn, fn_std=0.0, num_runs=5)


class TestTable1:
    def test_contains_all_cells(self):
        results = {
            (10, 0.9, m): stats() for m in ("clients", "server", "both")
        }
        text = format_table1(results, lookbacks=(10,), splits=(0.9,), dataset="cifar")
        assert "90-10" in text
        assert "FP(C+S)" in text
        assert "0.100" in text

    def test_missing_cells_rendered_as_dash(self):
        text = format_table1({}, lookbacks=(10,), splits=(0.9,), dataset="cifar")
        assert "-" in text


class TestQuorumSeries:
    def test_rows_per_quorum(self):
        results = {
            (q, 0.9, m): stats()
            for q in (3, 4)
            for m in ("clients", "server", "both")
        }
        text = format_quorum_series(results, quorums=(3, 4), split=0.9, dataset="cifar")
        assert text.count("\n") >= 3


class TestTable2:
    def test_adaptive_rows(self):
        from repro.experiments.runner import AdaptiveExperimentResult

        result = AdaptiveExperimentResult(
            non_adaptive=stats(fn=0.0),
            adaptive=stats(fn=0.111),
            adaptive_reject_votes=(9, 10),
            self_check_pass_rate=0.5,
        )
        text = format_table2({0.9: result})
        assert "Adaptive" in text and "Non-Adaptive" in text
        assert "0.111" in text


class TestVoteDistribution:
    def test_cumulative_shares(self):
        text = format_vote_distribution({0.9: [10, 5, 8]}, num_validators=10)
        assert "90-10" in text
        # all injections got >= 1 vote
        assert "1.00" in text

    def test_empty_votes_skipped(self):
        text = format_vote_distribution({0.9: []}, num_validators=10)
        assert "90-10" not in text


class TestGenericSeries:
    def test_alignment(self):
        text = format_series(
            "Figure X", {"main": [0.9, 0.95], "backdoor": [0.1, 0.0]}, x=[0, 1]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "main" in lines[1]


@dataclass
class FakeRecord:
    """Duck-typed round record carrying only what the report reads."""

    round_idx: int = 0
    accepted: bool = True
    validation_lag: int = 0
    rollback_count: int = 0
    transport_bytes: int = 0
    raw_transport_bytes: int = 0
    codec: str = "identity"
    accepted_at_round: int = 0
    phase_times: dict = field(default_factory=dict)


class TestExecutionReport:
    def test_zero_transport_reports_na_not_a_fake_ratio(self):
        # In-process runs move zero bytes: "1.00x compression" there would
        # read as a measurement that never happened.
        text = format_execution_report([FakeRecord(), FakeRecord(round_idx=1)])
        assert "n/a compression" in text
        assert "1.00x" not in text

    def test_single_codec_reports_measured_ratio(self):
        records = [
            FakeRecord(transport_bytes=500, raw_transport_bytes=1000,
                       codec="f32"),
            FakeRecord(round_idx=1, transport_bytes=500,
                       raw_transport_bytes=1000, codec="f32"),
        ]
        text = format_execution_report(records)
        assert "codec f32" in text
        assert "2.00x compression" in text

    def test_mixed_codecs_flagged_not_round_zeros(self):
        # The old report read round 0's codec and pooled every round's
        # bytes into one ratio — a sweep's mixed record list came out
        # labelled with whatever codec happened to run first.
        records = [
            FakeRecord(transport_bytes=1000, raw_transport_bytes=1000,
                       codec="identity"),
            FakeRecord(round_idx=1, transport_bytes=500,
                       raw_transport_bytes=1000, codec="f32"),
        ]
        text = format_execution_report(records)
        assert "mixed: f32+identity" in text

    def test_phase_times_render_when_present(self):
        records = [
            FakeRecord(phase_times={"train": 0.010, "validate": 0.002}),
            FakeRecord(round_idx=1,
                       phase_times={"train": 0.012, "validate": 0.004}),
        ]
        text = format_execution_report(records)
        assert "phase wall-clock (mean/round)" in text
        assert "train 11.0ms" in text
        assert "validate 3.0ms" in text

    def test_untraced_records_render_no_phase_line(self):
        text = format_execution_report([FakeRecord()])
        assert "phase wall-clock" not in text
