"""Unit tests for paper-style text reports."""

from __future__ import annotations

from repro.experiments.metrics import AggregateStats
from repro.experiments.reporting import (
    format_quorum_series,
    format_series,
    format_table1,
    format_table2,
    format_vote_distribution,
)


def stats(fp=0.1, fn=0.0):
    return AggregateStats(fp_mean=fp, fp_std=0.01, fn_mean=fn, fn_std=0.0, num_runs=5)


class TestTable1:
    def test_contains_all_cells(self):
        results = {
            (10, 0.9, m): stats() for m in ("clients", "server", "both")
        }
        text = format_table1(results, lookbacks=(10,), splits=(0.9,), dataset="cifar")
        assert "90-10" in text
        assert "FP(C+S)" in text
        assert "0.100" in text

    def test_missing_cells_rendered_as_dash(self):
        text = format_table1({}, lookbacks=(10,), splits=(0.9,), dataset="cifar")
        assert "-" in text


class TestQuorumSeries:
    def test_rows_per_quorum(self):
        results = {
            (q, 0.9, m): stats()
            for q in (3, 4)
            for m in ("clients", "server", "both")
        }
        text = format_quorum_series(results, quorums=(3, 4), split=0.9, dataset="cifar")
        assert text.count("\n") >= 3


class TestTable2:
    def test_adaptive_rows(self):
        from repro.experiments.runner import AdaptiveExperimentResult

        result = AdaptiveExperimentResult(
            non_adaptive=stats(fn=0.0),
            adaptive=stats(fn=0.111),
            adaptive_reject_votes=(9, 10),
            self_check_pass_rate=0.5,
        )
        text = format_table2({0.9: result})
        assert "Adaptive" in text and "Non-Adaptive" in text
        assert "0.111" in text


class TestVoteDistribution:
    def test_cumulative_shares(self):
        text = format_vote_distribution({0.9: [10, 5, 8]}, num_validators=10)
        assert "90-10" in text
        # all injections got >= 1 vote
        assert "1.00" in text

    def test_empty_votes_skipped(self):
        text = format_vote_distribution({0.9: []}, num_validators=10)
        assert "90-10" not in text


class TestGenericSeries:
    def test_alignment(self):
        text = format_series(
            "Figure X", {"main": [0.9, 0.95], "backdoor": [0.1, 0.0]}, x=[0, 1]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "main" in lines[1]
