"""Tests for the evaluation scenarios (fast configs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.metrics import detection_stats
from repro.experiments.scenarios import (
    run_early_scenario,
    run_error_trace,
    run_stable_scenario,
)


class TestStableScenario:
    def test_detects_injections(self, fast_config):
        result = run_stable_scenario(fast_config, seed=0)
        stats = detection_stats(
            result.records, result.injection_rounds, result.defense_start
        )
        assert stats.fn_rate == 0.0
        assert stats.fp_rate <= 0.3

    def test_record_count_matches_rounds(self, fast_config):
        result = run_stable_scenario(fast_config, seed=0)
        assert len(result.records) == fast_config.total_rounds

    def test_metrics_tracked_when_requested(self, fast_config):
        result = run_stable_scenario(fast_config, seed=0, track_metrics=True)
        assert len(result.main_accuracy) == fast_config.total_rounds
        assert all(0.0 <= a <= 1.0 for a in result.main_accuracy)

    def test_metrics_skipped_by_default(self, fast_config):
        result = run_stable_scenario(fast_config, seed=0)
        assert result.main_accuracy == []

    def test_votes_on_injections_reported(self, fast_config):
        result = run_stable_scenario(fast_config, seed=0)
        votes = result.reject_votes_on_injections()
        assert len(votes) == len(fast_config.attack_rounds)
        assert all(v >= fast_config.quorum for v in votes)

    def test_secure_agg_path_runs(self, fast_config):
        result = run_stable_scenario(fast_config, seed=0, use_secure_agg=True)
        stats = detection_stats(
            result.records, result.injection_rounds, result.defense_start
        )
        assert stats.fn_rate == 0.0

    def test_adaptive_attacker_records_self_checks(self, fast_config):
        result = run_stable_scenario(
            fast_config.with_updates(adaptive=True, adaptive_max_trials=3), seed=0
        )
        assert set(result.self_check_passed) == set(fast_config.attack_rounds)

    def test_server_only_mode_runs(self, fast_config):
        result = run_stable_scenario(fast_config.with_updates(mode="server"), seed=0)
        stats = detection_stats(
            result.records, result.injection_rounds, result.defense_start
        )
        assert stats.fn_rate == 0.0

    def test_femnist_scenario(self, fast_femnist_config):
        result = run_stable_scenario(fast_femnist_config, seed=0)
        stats = detection_stats(
            result.records, result.injection_rounds, result.defense_start
        )
        assert stats.fn_rate == 0.0


class TestEarlyScenario:
    def test_defended_run_rejects_late_injections(self, fast_config):
        result = run_early_scenario(
            fast_config, seed=0,
            total_rounds=40, defense_start=26,
            early_injections=(8,), late_injection_start=26,
            late_injection_every=3, late_injection_count=3,
        )
        late = {26, 29, 32}
        rejected = {r.round_idx for r in result.records if not r.accepted}
        assert late.issubset(rejected)

    def test_undefended_run_accepts_everything(self, fast_config):
        result = run_early_scenario(
            fast_config, seed=0,
            total_rounds=30, defense_start=None,
            early_injections=(8,), late_injection_start=20,
            late_injection_every=3, late_injection_count=2,
        )
        assert all(r.accepted for r in result.records)

    def test_early_backdoor_fades(self, fast_config):
        result = run_early_scenario(
            fast_config, seed=0,
            total_rounds=30, defense_start=None,
            early_injections=(8,), late_injection_start=25,
            late_injection_every=2, late_injection_count=1,
        )
        bd = np.array(result.backdoor_accuracy)
        # high right after the injection, lower a few rounds later
        assert bd[8] > 0.5
        assert bd[20] < bd[8]

    def test_injection_beyond_rounds_rejected(self, fast_config):
        with pytest.raises(ValueError):
            run_early_scenario(
                fast_config, seed=0, total_rounds=10, defense_start=None,
                early_injections=(20,), late_injection_count=0,
            )


class TestErrorTrace:
    def test_trace_shapes(self, fast_config):
        traces = run_error_trace(fast_config, seed=0, rounds=12, injections=(8,))
        assert traces["clean"].shape == (12, 10)
        assert traces["poisoned"].shape == (12, 10)

    def test_poisoned_run_disturbs_source_class(self, fast_config):
        traces = run_error_trace(fast_config, seed=0, rounds=12, injections=(8, 10))
        source = int(traces["source_class"])
        clean_err = traces["clean"][8:, source].max()
        poisoned_err = traces["poisoned"][8:, source].max()
        assert poisoned_err > clean_err
