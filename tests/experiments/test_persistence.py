"""Unit tests for JSON persistence of experiment results."""

from __future__ import annotations

import pytest

from repro.experiments.metrics import AggregateStats
from repro.experiments.persistence import load_results, save_results


def stats(fp=0.1, fn=0.2):
    return AggregateStats(fp_mean=fp, fp_std=0.01, fn_mean=fn, fn_std=0.02, num_runs=3)


class TestRoundTrip:
    def test_tuple_keys_preserved(self, tmp_path):
        results = {(20, 0.9, "both"): stats(), (10, 0.95, "clients"): stats(0.0, 0.0)}
        path = save_results(results, tmp_path / "out.json")
        loaded, _ = load_results(path)
        assert set(loaded) == set(results)
        assert loaded[(20, 0.9, "both")].fp_mean == pytest.approx(0.1)

    def test_scalar_keys_preserved(self, tmp_path):
        results = {0.9: stats(), "label": stats()}
        path = save_results(results, tmp_path / "out.json")
        loaded, _ = load_results(path)
        assert 0.9 in loaded and "label" in loaded

    def test_metadata_round_trips(self, tmp_path):
        path = save_results(
            {(1,): stats()}, tmp_path / "out.json", metadata={"dataset": "cifar"}
        )
        _, metadata = load_results(path)
        assert metadata == {"dataset": "cifar"}

    def test_all_fields_preserved(self, tmp_path):
        original = stats(0.123, 0.456)
        path = save_results({"x": original}, tmp_path / "out.json")
        loaded, _ = load_results(path)
        restored = loaded["x"]
        assert restored.fp_mean == pytest.approx(original.fp_mean)
        assert restored.fp_std == pytest.approx(original.fp_std)
        assert restored.fn_mean == pytest.approx(original.fn_mean)
        assert restored.fn_std == pytest.approx(original.fn_std)
        assert restored.num_runs == original.num_runs

    def test_creates_parent_dirs(self, tmp_path):
        path = save_results({"a": stats()}, tmp_path / "deep" / "dir" / "out.json")
        assert path.exists()

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "results": {}}')
        with pytest.raises(ValueError):
            load_results(path)
