"""Tests for the weight-compression codec subsystem.

Four properties matter:

1. codec round-trips: lossless codecs reconstruct their canonical domain
   bit-exactly, lossy codecs respect their documented error bounds, and
   both hold across arbitrary shapes (empty and odd-length included);
2. store integration: every store encodes on publish / decodes on get,
   counts compressed vs raw bytes, and — for delta codecs — pins parent
   versions so rolled-back or evicted chains stay decodable and still
   unlink completely once the last consumer is gone;
3. the engine gate: lossy codecs are rejected wherever
   ``require_lossless`` (or the config's ``allow_lossy=False``) demands
   losslessness, and admitted codecs surface in the round telemetry;
4. equivalence: with the identity codec the full engine matrix still
   commits bit-identically to the no-codec baseline, and with float16
   every engine commits bit-identically to every other float16 engine.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.compression import (
    MAX_DELTA_CHAIN,
    CompressedSegment,
    Float16Codec,
    IdentityCodec,
    QuantizedCodec,
    TopKDeltaCodec,
    WeightCodec,
    codec_names,
    decode_segment,
    make_codec,
    register_codec,
)
from repro.fl.model_store import (
    InProcessModelStore,
    SharedMemoryModelStore,
    make_model_store,
)
from repro.fl.parallel import SequentialExecutor, make_engine, make_executor
from tests.conftest import shm_entries

STORES = [InProcessModelStore, SharedMemoryModelStore]
ALL_CODECS = ("identity", "float16", "quantized", "topk")

#: Shapes the property tests sweep: empty, single element, odd lengths,
#: one crossing the quantizer's chunk boundary.
SHAPES = [0, 1, 3, 17, 256, 4097]


def vectors(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.normal(scale=0.5, size=n)


class TestSegmentSerialization:
    def test_header_roundtrip(self, rng):
        flat = vectors(rng, 33)
        segment = IdentityCodec().encode(flat)
        segment.parent_version = 7
        parsed = CompressedSegment.from_buffer(segment.to_bytes())
        assert parsed.codec == "identity"
        assert parsed.num_params == 33
        assert parsed.parent_version == 7
        np.testing.assert_array_equal(decode_segment(parsed, flat), flat)

    def test_parentless_header(self, rng):
        segment = Float16Codec().encode(vectors(rng, 4))
        parsed = CompressedSegment.from_buffer(segment.to_bytes())
        assert parsed.parent_version is None

    def test_decode_segment_rejects_unregistered_codec(self):
        segment = CompressedSegment("no-such-codec", 0, b"")
        with pytest.raises(ValueError, match="unregistered"):
            decode_segment(segment)


class TestLosslessRoundTrips:
    @pytest.mark.parametrize("n", SHAPES)
    def test_identity_exact_on_everything(self, rng, n):
        codec = IdentityCodec()
        flat = vectors(rng, n)
        np.testing.assert_array_equal(codec.decode(codec.encode(flat)), flat)
        np.testing.assert_array_equal(codec.canonicalize(flat), flat)
        assert codec.lossless and codec.transparent

    @pytest.mark.parametrize("n", SHAPES)
    def test_float16_exact_on_canonical_domain(self, rng, n):
        """The lossless contract: bit-exact on canonicalized vectors."""
        codec = Float16Codec()
        canonical = codec.canonicalize(vectors(rng, n))
        decoded = codec.decode(codec.encode(canonical))
        np.testing.assert_array_equal(decoded, canonical)
        # Canonicalization is a projection: applying it twice is a no-op.
        np.testing.assert_array_equal(codec.canonicalize(canonical), canonical)
        assert codec.lossless and not codec.transparent

    def test_float16_canonicalization_error_bound(self, rng):
        flat = vectors(rng, 512)
        err = np.abs(Float16Codec().canonicalize(flat) - flat)
        assert np.all(err <= np.abs(flat) * 2.0**-11 + 1e-12)

    def test_float16_overflow_becomes_inf(self):
        canon = Float16Codec().canonicalize(np.array([1e6, -1e6, 1.0]))
        assert np.isinf(canon[0]) and np.isinf(canon[1])
        assert np.isfinite(canon[2])


class TestLossyBounds:
    @pytest.mark.parametrize("n", SHAPES)
    def test_quantized_respects_documented_bound(self, rng, n):
        codec = QuantizedCodec(chunk=64)
        flat = vectors(rng, n)
        decoded = codec.decode(codec.encode(flat))
        assert decoded.shape == flat.shape
        bound = codec.max_error_bound(flat)
        assert np.all(np.abs(decoded - flat) <= bound * 1.001 + 1e-9)
        assert not codec.lossless

    def test_quantized_constant_chunk_is_exact(self):
        flat = np.full(100, 0.123)
        decoded = QuantizedCodec(chunk=32).decode(
            QuantizedCodec(chunk=32).encode(flat)
        )
        np.testing.assert_allclose(decoded, flat, atol=1e-7)

    @pytest.mark.parametrize("n", SHAPES)
    def test_topk_exact_at_kept_coordinates(self, rng, n):
        codec = TopKDeltaCodec(k_ratio=0.25)
        parent = vectors(rng, n)
        flat = parent + rng.normal(scale=0.01, size=n)
        segment = codec.encode(flat, parent, parent_version=0)
        decoded = codec.decode(segment, parent)
        assert decoded.shape == flat.shape
        if n:
            k = int(np.ceil(codec.k_ratio * n))
            moved = np.argsort(np.abs(flat - parent))[-k:]
            np.testing.assert_array_equal(decoded[moved], flat[moved])
            bound = codec.max_error_bound(flat, parent)
            assert np.all(np.abs(decoded - flat) <= bound + 1e-15)
        assert not codec.lossless and codec.transparent

    def test_topk_without_parent_is_dense_and_exact(self, rng):
        codec = TopKDeltaCodec()
        flat = vectors(rng, 101)
        segment = codec.encode(flat)  # no parent: dense fallback
        assert segment.parent_version is None
        np.testing.assert_array_equal(codec.decode(segment), flat)

    def test_topk_delta_needs_parent_to_decode(self, rng):
        codec = TopKDeltaCodec()
        parent = vectors(rng, 50)
        segment = codec.encode(parent + 0.01, parent, parent_version=3)
        assert segment.parent_version == 3
        with pytest.raises(ValueError, match="parent"):
            codec.decode(segment)

    def test_topk_compresses(self, rng):
        flat = vectors(rng, 10000)
        parent = flat + vectors(rng, 10000) * 0.01
        segment = TopKDeltaCodec(k_ratio=0.1).encode(flat, parent, 0)
        assert segment.nbytes < flat.nbytes / 5


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=600),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    name=st.sampled_from(ALL_CODECS),
)
def test_property_roundtrip_over_random_shapes(n, seed, name):
    """Any codec, any shape: decode(encode(x)) has the right shape/dtype,
    lossless codecs are exact on their canonical domain, and serialized
    segments decode identically to in-memory ones."""
    rng = np.random.default_rng(seed)
    codec = make_codec(name)
    flat = rng.normal(size=n)
    parent = rng.normal(size=n) if codec.needs_parent else None
    parent_version = 0 if parent is not None else None
    if codec.lossless:
        flat = codec.canonicalize(flat)
    segment = codec.encode(flat, parent, parent_version)
    decoded = codec.decode(segment, parent)
    assert decoded.shape == (n,)
    assert decoded.dtype == np.float64
    if codec.lossless:
        np.testing.assert_array_equal(decoded, flat)
    wire = CompressedSegment.from_buffer(segment.to_bytes())
    np.testing.assert_array_equal(decode_segment(wire, parent), decoded)


class TestRegistry:
    def test_known_names(self):
        assert set(ALL_CODECS) <= set(codec_names())

    def test_make_codec_resolves_names_instances_and_none(self):
        assert make_codec(None).name == "identity"
        assert make_codec("float16").name == "float16"
        custom = QuantizedCodec(chunk=128)
        assert make_codec(custom) is custom

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown weight codec"):
            make_codec("middle-out")

    def test_custom_codec_registration(self, rng):
        class NegatingCodec(WeightCodec):
            name = "test-negate"
            lossless = True
            transparent = True

            def encode(self, flat, parent=None, parent_version=None):
                flat = np.ascontiguousarray(flat, dtype=np.float64)
                return CompressedSegment(self.name, len(flat), (-flat).tobytes())

            def decode(self, segment, parent=None):
                return -np.frombuffer(bytes(segment.payload), dtype=np.float64)

        register_codec(NegatingCodec)
        try:
            flat = vectors(rng, 9)
            with InProcessModelStore(codec="test-negate") as store:
                version = store.publish(flat)
                np.testing.assert_array_equal(store.get(version), flat)
        finally:
            from repro.fl.compression import CODECS

            CODECS.pop("test-negate", None)


@pytest.mark.parametrize("store_cls", STORES)
class TestStoreCodecIntegration:
    @pytest.mark.parametrize("name", ["identity", "float16"])
    def test_lossless_publish_get_roundtrip(self, store_cls, name, rng):
        codec = make_codec(name)
        with store_cls(codec=codec) as store:
            flat = codec.canonicalize(vectors(rng, 64))
            version = store.publish(flat)
            np.testing.assert_array_equal(store.get(version), flat)
            assert not store.get(version).flags.writeable

    def test_compressed_accounting(self, store_cls, rng):
        with store_cls(codec="float16") as store:
            flat = vectors(rng, 1000)
            store.publish(flat)
            assert store.raw_bytes_published == flat.nbytes
            assert store.bytes_published == flat.nbytes // 4
            assert store.compression_ratio == pytest.approx(4.0)

    def test_dedup_still_costs_zero_bytes(self, store_cls, rng):
        with store_cls(codec="quantized") as store:
            flat = vectors(rng, 64)
            first = store.publish(flat)
            published = store.bytes_published
            assert store.publish(flat.copy()) == first
            assert store.bytes_published == published

    def test_lossy_store_respects_codec_bound(self, store_cls, rng):
        codec = QuantizedCodec()
        with store_cls(codec=codec) as store:
            flat = vectors(rng, 300)
            version = store.publish(flat)
            err = np.max(np.abs(store.get(version) - flat))
            assert err <= codec.max_error_bound(flat) * 1.001 + 1e-9

    def test_delta_parent_pinned_until_child_evicted(self, store_cls, rng):
        """The rollback-decodability property: releasing a parent's last
        *external* reference must not unlink it while a delta child (e.g.
        a version a straggler validator still holds) depends on it."""
        with store_cls(codec="topk") as store:
            base = vectors(rng, 128)
            child = base.copy()
            child[:5] += 0.5  # sparse change, within the top-k budget
            v0 = store.publish_new(base)
            v1 = store.publish_new(child)  # delta against v0
            assert store.refcount(v0) == 2  # publisher + child pin
            store.release(v0)  # the "history rollback" drops its reference
            assert v0 in store  # pinned by v1
            np.testing.assert_array_equal(store.get(v1), child)
            store.release(v1)  # last consumer gone: cascade eviction
            assert v0 not in store and v1 not in store
            assert store.versions() == []

    def test_chain_depth_caps_with_dense_rebase(self, store_cls, rng):
        with store_cls(codec="topk") as store:
            flat = vectors(rng, 64)
            versions = [store.publish_new(flat + 0.001 * i) for i in range(2 * MAX_DELTA_CHAIN + 2)]
            depths = [store._chain_depth[v] for v in versions]
            assert max(depths) <= MAX_DELTA_CHAIN
            assert depths.count(0) >= 2  # at least one dense re-base happened
            for version in versions:
                assert store.get(version).shape == flat.shape

    def test_length_mismatch_gets_no_parent(self, store_cls, rng):
        with store_cls(codec="topk") as store:
            store.publish_new(vectors(rng, 32))
            v1 = store.publish_new(vectors(rng, 64))
            assert store._parents.get(v1) is None


class TestSharedMemoryCodecLifecycle:
    def test_encode_evict_cycles_unlink_everything(self, rng):
        """The codec leak gate: publish/evict churn with a delta codec,
        including pinned parents, must leave /dev/shm clean."""
        store = SharedMemoryModelStore(codec="topk")
        with store:
            live = []
            for i in range(20):
                live.append(store.publish_new(vectors(rng, 64)))
                if len(live) > 3:
                    store.release(live.pop(0))
            assert len(shm_entries(store.name_prefix)) == len(store.versions())
            for version in live:
                store.release(version)
            assert store.versions() == []
            assert shm_entries(store.name_prefix) == []
        assert shm_entries(store.name_prefix) == []

    def test_close_unlinks_pinned_parents(self, rng):
        store = SharedMemoryModelStore(codec="topk")
        base = vectors(rng, 64)
        store.publish_new(base)
        store.publish_new(base + 0.01)
        assert len(shm_entries(store.name_prefix)) == 2
        store.close()
        assert shm_entries(store.name_prefix) == []

    def test_worker_view_decodes_delta_chain(self, rng):
        with SharedMemoryModelStore(codec="topk") as store:
            base = vectors(rng, 48)
            v0 = store.publish_new(base)
            v1 = store.publish_new(base + 0.005)
            view = store.worker_handle().attach()
            np.testing.assert_array_equal(view.get(v0, 48), store.get(v0))
            np.testing.assert_array_equal(view.get(v1, 48), store.get(v1))
            # One-shot (candidate-style) reads resolve parents too.
            one_shot = view.get(v1, 48, cache=False)
            np.testing.assert_array_equal(one_shot, store.get(v1))
            view.close()

    def test_worker_view_decodes_float16(self, rng):
        codec = Float16Codec()
        with SharedMemoryModelStore(codec=codec) as store:
            flat = codec.canonicalize(vectors(rng, 32))
            version = store.publish(flat)
            view = store.worker_handle().attach()
            np.testing.assert_array_equal(view.get(version, 32), flat)
            view.close()


class TestLosslessGating:
    def test_make_model_store_rejects_lossy_by_default(self):
        with pytest.raises(ValueError, match="lossy"):
            make_model_store(0, "inprocess", codec="quantized")

    def test_make_model_store_admits_lossy_explicitly(self):
        with make_model_store(
            0, "inprocess", codec="topk", require_lossless=False
        ) as store:
            assert store.codec.name == "topk"

    def test_make_engine_rejects_lossy_by_default(self):
        with pytest.raises(ValueError, match="lossy"):
            make_engine(0, codec="topk")

    def test_make_engine_carries_codec(self):
        with make_engine(0, codec="float16") as engine:
            assert engine.codec.name == "float16"
            assert engine.store.codec.name == "float16"
        with make_engine(
            0, codec="quantized", require_lossless=False
        ) as engine:
            assert engine.codec.name == "quantized"

    def test_config_rejects_unknown_codec(self):
        from repro.experiments.configs import ExperimentConfig

        with pytest.raises(ValueError, match="codec"):
            ExperimentConfig(codec="middle-out")

    def test_config_rejects_lossy_without_opt_in(self):
        from repro.experiments.configs import ExperimentConfig

        with pytest.raises(ValueError, match="allow_lossy"):
            ExperimentConfig(codec="quantized")
        config = ExperimentConfig(codec="quantized", allow_lossy=True)
        assert config.codec == "quantized"

    def test_config_rejects_sub_one_pipeline_depth(self):
        from repro.experiments.configs import ExperimentConfig

        with pytest.raises(ValueError, match="pipeline_depth"):
            ExperimentConfig(pipeline_depth=0)

    def test_environment_key_tracks_codec(self):
        from repro.experiments.configs import ExperimentConfig

        base = ExperimentConfig()
        assert base.environment_key(0) != base.with_updates(
            codec="float16"
        ).environment_key(0)

    def test_cli_exposes_codec_flags(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(
            ["detect", "--codec", "topk", "--allow-lossy"]
        )
        assert args.codec == "topk" and args.allow_lossy
        assert not build_parser().parse_args(["detect"]).allow_lossy
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--codec", "middle-out"])


class TestCodecEngineEquivalence:
    """The codec axis of the equivalence matrix (acceptance criterion)."""

    def _run(self, store, executor):
        from tests.fl.test_parallel import build_defended_sim, run_and_snapshot

        return run_and_snapshot(build_defended_sim(executor, store=store))

    def test_identity_codec_matches_no_codec_baseline(self):
        from tests.fl.test_parallel import build_defended_sim, run_and_snapshot

        baseline_flat, baseline_records = run_and_snapshot(
            build_defended_sim(SequentialExecutor(), store=InProcessModelStore())
        )
        for workers, store_cls in [
            (2, SharedMemoryModelStore),
            (2, InProcessModelStore),
        ]:
            store = store_cls(codec="identity")
            with store, make_executor(workers, store=store) as executor:
                flat, records = self._run(store, executor)
            np.testing.assert_array_equal(baseline_flat, flat)
            assert baseline_records == records

    @pytest.mark.parametrize("name", ["float16"])
    def test_lossless_codec_runs_agree_across_engines(self, name):
        """float16 engines must agree with *each other* bit-for-bit (the
        canonicalized trajectory), across executors, stores and modes."""
        runs = {}
        for label, workers, mode, store_cls in [
            ("seq+inproc", 0, "sync", InProcessModelStore),
            ("pool+shm", 2, "sync", SharedMemoryModelStore),
            ("pipelined+shm", 2, "pipelined", SharedMemoryModelStore),
        ]:
            store = store_cls(codec=name)
            with store:
                if label == "seq+inproc":
                    executor = SequentialExecutor()
                    executor.bind(store=store)
                else:
                    executor = make_executor(
                        workers, store=store, mode=mode, pipeline_depth=2
                    )
                with executor:
                    runs[label] = self._run(store, executor)
        base_flat, base_records = runs["seq+inproc"]
        decisions = lambda records: [r[:6] for r in records]  # noqa: E731
        for label, (flat, records) in runs.items():
            np.testing.assert_array_equal(base_flat, flat)
            assert decisions(records) == decisions(base_records), label

    def test_round_records_surface_codec_telemetry(self):
        from tests.fl.test_parallel import build_defended_sim

        store = SharedMemoryModelStore(codec="float16")
        with store, make_executor(2, store=store) as executor:
            sim = build_defended_sim(executor, store=store)
            records = sim.run(4)
        assert all(r.codec == "float16" for r in records)
        moved = [r for r in records if r.transport_bytes]
        assert moved, "expected store transport in a pooled run"
        for record in moved:
            assert record.compressed_bytes == record.transport_bytes
            assert record.raw_transport_bytes > record.transport_bytes
            assert record.compression_ratio == pytest.approx(4.0, rel=0.01)

    def test_execution_report_includes_codec(self):
        from repro.experiments.reporting import format_execution_report
        from tests.fl.test_parallel import build_defended_sim

        store = InProcessModelStore(codec="float16")
        sim = build_defended_sim(SequentialExecutor(), store=store)
        report = format_execution_report(sim.run(3))
        assert "codec float16" in report


class TestCodecPipeTransport:
    """The blob (pipe) fallback path compresses through the store codec.

    Satellite of the stacked-cohort PR, closing the ROADMAP "codec-aware
    pipe transport" item: a process pool over an in-process store ships
    self-describing codec segments instead of raw float64 blobs, counted
    as compressed bytes in ``transport_bytes`` with the raw figure in
    ``raw_transport_bytes``.
    """

    def test_pipe_blobs_compress_and_count_raw_bytes(self):
        from tests.fl.test_parallel import build_defended_sim

        store = InProcessModelStore(codec="float16")
        with store, make_executor(2, store=store) as executor:
            sim = build_defended_sim(executor, store=store)
            records = sim.run(6)
        # float16 payloads: ~4x below raw, less the fixed segment headers
        # (which loom large over this test's tiny 51-parameter model).
        total = sum(r.transport_bytes for r in records)
        raw = sum(r.raw_transport_bytes for r in records)
        assert 0 < total < raw
        assert raw / total > 2.5
        assert all(r.codec == "float16" for r in records)

    def test_identity_pipe_blobs_report_equal_raw(self):
        from tests.fl.test_parallel import build_defended_sim

        store = InProcessModelStore()
        with store, make_executor(2, store=store) as executor:
            sim = build_defended_sim(executor, store=store)
            records = sim.run(4)
        for record in records:
            # Segment headers ride on top of the raw payload.
            assert record.transport_bytes >= record.raw_transport_bytes > 0
            assert record.transport_bytes - record.raw_transport_bytes < 4096

    def test_float16_pipes_match_other_float16_engines(self):
        """The codec'd pipe path stays on the canonicalized trajectory:
        pool+pipes+float16 commits bit-identically to sequential float16."""
        from tests.fl.test_parallel import build_defended_sim, run_and_snapshot

        seq_store = InProcessModelStore(codec="float16")
        seq_executor = SequentialExecutor()
        seq_executor.bind(store=seq_store)
        with seq_store:
            base_flat, base_records = run_and_snapshot(
                build_defended_sim(seq_executor, store=seq_store)
            )
        pipe_store = InProcessModelStore(codec="float16")
        with pipe_store, make_executor(2, store=pipe_store) as executor:
            flat, records = run_and_snapshot(
                build_defended_sim(executor, store=pipe_store)
            )
        np.testing.assert_array_equal(base_flat, flat)
        assert base_records == records

    def test_delta_codec_falls_back_to_dense_blobs(self):
        """A parentless pipe blob from the topk delta codec decodes exactly
        (dense fallback), keeping the transparent trajectory intact."""
        from tests.fl.test_parallel import build_defended_sim, run_and_snapshot

        baseline_flat, baseline_records = run_and_snapshot(
            build_defended_sim(SequentialExecutor(), store=InProcessModelStore())
        )
        store = InProcessModelStore(codec="topk")
        with store, make_executor(2, store=store) as executor:
            flat, records = run_and_snapshot(
                build_defended_sim(executor, store=store)
            )
        # topk is transparent; with no usable pipe parent every blob is a
        # dense exact payload, so the run matches the identity baseline.
        np.testing.assert_array_equal(baseline_flat, flat)
        assert baseline_records == records
