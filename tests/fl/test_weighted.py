"""Unit tests for sample-count-weighted FedAvg."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.weighted import WeightedFedAvgAggregator


class TestWeightedFedAvg:
    def test_without_weights_is_plain_mean(self, rng):
        agg = WeightedFedAvgAggregator()
        updates = [np.array([2.0]), np.array([4.0])]
        np.testing.assert_allclose(agg.aggregate(updates, rng), [3.0])

    def test_weights_applied_and_normalised(self, rng):
        agg = WeightedFedAvgAggregator()
        agg.set_weights([30, 10])  # e.g. dataset sizes
        updates = [np.array([0.0]), np.array([4.0])]
        np.testing.assert_allclose(agg.aggregate(updates, rng), [1.0])

    def test_weights_are_per_round(self, rng):
        agg = WeightedFedAvgAggregator()
        agg.set_weights([1, 0])
        updates = [np.array([2.0]), np.array([4.0])]
        agg.aggregate(updates, rng)
        # next round without weights falls back to the mean
        np.testing.assert_allclose(agg.aggregate(updates, rng), [3.0])

    def test_count_mismatch_rejected(self, rng):
        agg = WeightedFedAvgAggregator()
        agg.set_weights([1, 2, 3])
        with pytest.raises(ValueError):
            agg.aggregate([np.zeros(1)] * 2, rng)

    @pytest.mark.parametrize("weights", [[], [-1.0, 2.0], [0.0, 0.0]])
    def test_invalid_weights_rejected(self, weights):
        with pytest.raises(ValueError):
            WeightedFedAvgAggregator().set_weights(weights)

    def test_secure_agg_compatible(self):
        assert not WeightedFedAvgAggregator().requires_individual_updates

    def test_empty_updates_rejected(self, rng):
        with pytest.raises(ValueError):
            WeightedFedAvgAggregator().aggregate([], rng)
