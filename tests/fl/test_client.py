"""Unit tests for repro.fl.client."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.client import HonestClient, LocalTrainingConfig, local_train
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.models import make_mlp


class TestLocalTrainingConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"epochs": 0}, {"batch_size": 0}, {"lr": 0.0}]
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LocalTrainingConfig(**kwargs)


class TestLocalTrain:
    def test_improves_loss(self, tiny_dataset, tiny_mlp, rng):
        loss = SoftmaxCrossEntropy()
        before = loss.forward(tiny_mlp.forward(tiny_dataset.x), tiny_dataset.y)
        local_train(
            tiny_mlp, tiny_dataset, LocalTrainingConfig(epochs=10, lr=0.1), rng
        )
        after = loss.forward(tiny_mlp.forward(tiny_dataset.x), tiny_dataset.y)
        assert after < before

    def test_empty_dataset_rejected(self, tiny_mlp, rng):
        from repro.data.dataset import Dataset

        empty = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 3)
        with pytest.raises(ValueError):
            local_train(tiny_mlp, empty, LocalTrainingConfig(), rng)

    def test_mutates_model_in_place(self, tiny_dataset, tiny_mlp, rng):
        before = tiny_mlp.get_flat()
        returned = local_train(tiny_mlp, tiny_dataset, LocalTrainingConfig(), rng)
        assert returned is tiny_mlp
        assert not np.allclose(tiny_mlp.get_flat(), before)


class TestHonestClient:
    def test_update_is_difference_of_models(self, tiny_dataset, rng):
        model = make_mlp(2, 3, rng, hidden=(8,))
        client = HonestClient(0, tiny_dataset)
        before = model.get_flat()
        update = client.produce_update(model, LocalTrainingConfig(), 0, rng)
        # the global model itself must be untouched
        np.testing.assert_array_equal(model.get_flat(), before)
        assert update.shape == before.shape
        assert np.abs(update).max() > 0.0

    def test_not_malicious(self, tiny_dataset):
        assert not HonestClient(0, tiny_dataset).is_malicious

    def test_repr_mentions_honest(self, tiny_dataset):
        assert "honest" in repr(HonestClient(3, tiny_dataset))
