"""Tests for the virtual client registry (repro.fl.registry).

The headline guarantees: lazy per-client partitions are bit-identical to
the eager split (and consume the shared RNG stream identically), the
registry materializes clients only on selection and drops every shard
reference at end_round, and registry-backed simulations commit
bit-identical models to eager-list runs.
"""

from __future__ import annotations

import gc
import pickle
import weakref

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.partition import dirichlet_partition, iid_partition, writer_partition
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.registry import (
    ClientFactory,
    ClientRegistry,
    LazyShardFactory,
    PartitionSpec,
)
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp


def make_pool(seed: int = 5, n: int = 240) -> Dataset:
    rng = np.random.default_rng(seed)
    centers = np.array([[2.0, 0.0], [-2.0, 1.5], [0.0, -2.5]])
    labels = np.tile(np.arange(3), n // 3)
    x = centers[labels] + rng.normal(0.0, 0.4, size=(len(labels), 2))
    return Dataset(x, labels, 3)


class TestPartitionSpecEquivalence:
    """Lazy replay must reproduce the eager split bit-for-bit, for every
    client, and advance the caller's stream exactly as the eager call."""

    def test_dirichlet_lazy_matches_eager(self):
        pool = make_pool()
        eager_rng = np.random.default_rng(3)
        eager_parts = dirichlet_partition(pool.y, 8, 0.9, eager_rng, min_samples=2)

        lazy_rng = np.random.default_rng(3)
        spec = PartitionSpec.dirichlet(pool.y, 8, 0.9, lazy_rng, min_samples=2)
        for cid in range(8):
            np.testing.assert_array_equal(spec.indices(cid), eager_parts[cid])
        # Constructing the spec consumed exactly the eager draw.
        assert eager_rng.random() == lazy_rng.random()

    def test_iid_lazy_matches_eager(self):
        eager_rng = np.random.default_rng(7)
        eager_parts = iid_partition(240, 6, eager_rng)
        lazy_rng = np.random.default_rng(7)
        spec = PartitionSpec.iid(240, 6, lazy_rng)
        for cid in range(6):
            np.testing.assert_array_equal(spec.indices(cid), eager_parts[cid])
        assert eager_rng.random() == lazy_rng.random()

    def test_writer_lazy_matches_eager(self):
        writer_ids = np.random.default_rng(0).integers(0, 5, size=200)
        eager_parts = writer_partition(writer_ids)
        spec = PartitionSpec.writer(writer_ids)
        assert spec.num_clients == len(eager_parts)
        for cid in range(spec.num_clients):
            np.testing.assert_array_equal(spec.indices(cid), eager_parts[cid])

    def test_explicit_parts_held_as_is(self):
        parts = [np.arange(0, 5), np.arange(5, 9)]
        spec = PartitionSpec.from_parts(parts)
        assert spec.num_clients == 2
        np.testing.assert_array_equal(spec.indices(1), parts[1])

    def test_shard_len_and_all_parts(self):
        spec = PartitionSpec.iid(100, 4, np.random.default_rng(0))
        assert [spec.shard_len(c) for c in range(4)] == [
            len(p) for p in spec.all_parts()
        ]

    def test_out_of_range_client_rejected(self):
        spec = PartitionSpec.iid(100, 4, np.random.default_rng(0))
        with pytest.raises(IndexError):
            spec.indices(4)
        with pytest.raises(IndexError):
            spec.indices(-1)

    def test_pickle_roundtrip_replays_identically(self):
        """Worker processes receive the spec without its parts cache and
        replay their own copy — bit-identically."""
        pool = make_pool()
        spec = PartitionSpec.dirichlet(pool.y, 8, 0.9, np.random.default_rng(3))
        original = [spec.indices(c) for c in range(8)]  # populate cache
        clone = pickle.loads(pickle.dumps(spec))
        assert clone._parts is None  # cache dropped on the wire
        for cid in range(8):
            np.testing.assert_array_equal(clone.indices(cid), original[cid])

    def test_pickle_keeps_explicit_parts(self):
        spec = PartitionSpec.from_parts([np.arange(3), np.arange(3, 7)])
        clone = pickle.loads(pickle.dumps(spec))
        np.testing.assert_array_equal(clone.indices(1), np.arange(3, 7))


class TestLazyShardFactory:
    def test_make_builds_honest_client_over_lazy_shard(self):
        pool = make_pool()
        spec = PartitionSpec.iid(len(pool), 6, np.random.default_rng(1))
        factory = LazyShardFactory(pool, spec)
        assert factory.num_clients == 6
        client = factory.make(2)
        assert isinstance(client, HonestClient)
        assert client.client_id == 2
        eager_shard = pool.subset(spec.indices(2))
        np.testing.assert_array_equal(client.dataset.x, eager_shard.x)
        np.testing.assert_array_equal(client.dataset.y, eager_shard.y)
        assert factory.shard_len(2) == len(eager_shard)


class _Misbehaving(ClientFactory):
    """Factory returning a client with the wrong id (contract check)."""

    @property
    def num_clients(self) -> int:
        return 4

    def make(self, cid: int):
        return HonestClient(0, make_pool(n=12))

    def shard_len(self, cid: int) -> int:
        return 12


class TestClientRegistry:
    def _registry(self, num_clients: int = 6, overrides=None) -> ClientRegistry:
        pool = make_pool()
        spec = PartitionSpec.iid(len(pool), num_clients, np.random.default_rng(1))
        return ClientRegistry(LazyShardFactory(pool, spec), overrides)

    def test_len_and_iter_are_ids(self):
        registry = self._registry()
        assert len(registry) == 6
        assert list(registry) == list(range(6))

    def test_materialize_on_access_and_round_cache(self):
        registry = self._registry()
        first = registry[3]
        assert registry[3] is first  # cached within the round
        assert registry.materialized_total == 1
        assert registry.active_count == 1

    def test_end_round_discards_shards(self):
        """The bounded-memory claim: after end_round no reference to a
        factory-made client (or its shard) survives inside the registry."""
        registry = self._registry()
        client = registry[2]
        ref = weakref.ref(client)
        shard_ref = weakref.ref(client.dataset)
        resident = registry.end_round()
        assert resident == 1
        assert registry.active_count == 0
        del client
        gc.collect()
        assert ref() is None
        assert shard_ref() is None

    def test_telemetry_counters(self):
        registry = self._registry()
        for cid in (0, 1, 2):
            registry[cid]
        registry.end_round()
        registry[4]
        assert registry.materialized_total == 4
        assert registry.materialized_peak == 3

    def test_out_of_range_rejected(self):
        registry = self._registry()
        with pytest.raises(IndexError):
            registry[6]

    def test_factory_id_contract_enforced(self):
        registry = ClientRegistry(_Misbehaving())
        with pytest.raises(ValueError, match="client_id"):
            registry[2]

    def test_overrides_replace_factory_clients(self):
        attacker = HonestClient(1, make_pool(n=12))
        attacker.parallel_safe = False
        registry = self._registry(overrides={1: attacker})
        assert registry[1] is attacker
        registry.end_round()
        assert registry[1] is attacker  # overrides stay resident
        assert registry.materialized_total == 0
        assert registry.num_overrides == 1

    def test_override_validation(self):
        with pytest.raises(ValueError, match="outside"):
            self._registry(overrides={9: HonestClient(9, make_pool(n=12))})
        with pytest.raises(ValueError, match="client_id"):
            self._registry(overrides={1: HonestClient(2, make_pool(n=12))})

    def test_metadata_queries_do_not_materialize(self):
        attacker = HonestClient(1, make_pool(n=12))
        attacker.parallel_safe = False
        registry = self._registry(overrides={1: attacker})
        for cid in range(6):
            registry.is_malicious(cid)
            registry.is_parallel_safe(cid)
            registry.is_cohortable(cid)
            registry.shard_len(cid)
        assert registry.materialized_total == 0
        assert registry.active_count == 0
        assert registry.is_parallel_safe(0)
        assert not registry.is_parallel_safe(1)
        assert not registry.is_malicious(0)

    def test_worker_view_strips_unsafe_overrides(self):
        safe = HonestClient(2, make_pool(n=12))
        unsafe = HonestClient(1, make_pool(n=12))
        unsafe.parallel_safe = False
        registry = self._registry(overrides={1: unsafe, 2: safe})
        view = registry.worker_view()
        assert view.num_overrides == 1
        assert view[2] is safe
        assert len(view) == len(registry)


class TestRegistrySimulationEquivalence:
    """A registry-backed simulation commits bit-identical models to the
    eager-list one (the parallel-engine matrix extends this across
    executors; this is the sequential spine)."""

    def _world(self):
        pool = make_pool()
        rng = np.random.default_rng(2)
        spec = PartitionSpec.iid(len(pool), 6, rng)
        model = make_mlp(2, 3, np.random.default_rng(9), hidden=(8,))
        config = FLConfig(
            num_clients=6, clients_per_round=3, local_epochs=1, batch_size=16
        )
        return pool, spec, model, config

    def test_bit_identical_to_eager_list(self):
        pool, spec, model, config = self._world()
        eager_clients = [
            HonestClient(cid, pool.subset(spec.indices(cid))) for cid in range(6)
        ]
        sim_eager = FederatedSimulation(
            model.clone(), eager_clients, config, np.random.default_rng(4)
        )
        records_eager = sim_eager.run(5)

        registry = ClientRegistry(LazyShardFactory(pool, spec))
        sim_virtual = FederatedSimulation(
            model.clone(), registry, config, np.random.default_rng(4)
        )
        records_virtual = sim_virtual.run(5)

        np.testing.assert_array_equal(
            sim_eager.global_model.get_flat(), sim_virtual.global_model.get_flat()
        )
        assert [r.contributor_ids for r in records_eager] == [
            r.contributor_ids for r in records_virtual
        ]

    def test_round_memory_is_cohort_sized(self):
        pool, spec, model, config = self._world()
        registry = ClientRegistry(LazyShardFactory(pool, spec))
        sim = FederatedSimulation(
            model.clone(), registry, config, np.random.default_rng(4)
        )
        records = sim.run(4)
        assert all(
            r.materialized_clients <= config.clients_per_round for r in records
        )
        assert registry.active_count == 0  # nothing leaks between rounds

    def test_eager_run_reports_population_residency(self):
        pool, spec, model, config = self._world()
        clients = [
            HonestClient(cid, pool.subset(spec.indices(cid))) for cid in range(6)
        ]
        sim = FederatedSimulation(
            model.clone(), clients, config, np.random.default_rng(4)
        )
        record = sim.run_round()
        assert record.materialized_clients == 6
        assert record.peak_rss_kb > 0
