"""Unit + property tests for the secure-aggregation simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.secure_agg import SecureAggregator, make_pairwise_masks


class TestPairwiseMasks:
    def test_masks_cancel_exactly(self):
        masks = make_pairwise_masks([3, 1, 7], dim=10, round_seed=0)
        total = sum(masks.values())
        np.testing.assert_allclose(total, np.zeros(10), atol=1e-12)

    def test_single_client_unmasked(self):
        masks = make_pairwise_masks([5], dim=4, round_seed=0)
        np.testing.assert_array_equal(masks[5], np.zeros(4))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            make_pairwise_masks([1, 1], dim=2, round_seed=0)

    def test_masks_are_nontrivial(self):
        masks = make_pairwise_masks([0, 1], dim=8, round_seed=0)
        assert np.abs(masks[0]).max() > 0.1

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(2, 8),
        dim=st.integers(1, 30),
        round_seed=st.integers(0, 10_000),
    )
    def test_cancellation_property(self, n, dim, round_seed):
        """For any round and cohort, the masks sum to zero."""
        masks = make_pairwise_masks(list(range(n)), dim, round_seed)
        np.testing.assert_allclose(sum(masks.values()), np.zeros(dim), atol=1e-9)


class TestSecureAggregator:
    def test_sum_recovered(self, rng):
        updates = {i: rng.normal(size=6) for i in range(4)}
        agg = SecureAggregator(list(updates), dim=6, round_seed=3)
        submissions = [agg.blind(i, u) for i, u in updates.items()]
        total = agg.unmask_sum(submissions)
        np.testing.assert_allclose(total, sum(updates.values()), atol=1e-9)

    def test_blinded_submission_hides_update(self, rng):
        update = rng.normal(size=6)
        agg = SecureAggregator([0, 1], dim=6, round_seed=3)
        blinded = agg.blind(0, update)
        assert not np.allclose(blinded.blinded, update, atol=0.01)

    def test_unknown_client_rejected(self, rng):
        agg = SecureAggregator([0, 1], dim=3, round_seed=0)
        with pytest.raises(KeyError):
            agg.blind(9, np.zeros(3))

    def test_wrong_dim_rejected(self):
        agg = SecureAggregator([0, 1], dim=3, round_seed=0)
        with pytest.raises(ValueError):
            agg.blind(0, np.zeros(4))

    def test_missing_submission_rejected(self, rng):
        agg = SecureAggregator([0, 1, 2], dim=3, round_seed=0)
        submissions = [agg.blind(0, np.zeros(3)), agg.blind(1, np.zeros(3))]
        with pytest.raises(ValueError):
            agg.unmask_sum(submissions)

    def test_round_seed_changes_masks(self, rng):
        update = rng.normal(size=4)
        a = SecureAggregator([0, 1], dim=4, round_seed=1).blind(0, update)
        b = SecureAggregator([0, 1], dim=4, round_seed=2).blind(0, update)
        assert not np.allclose(a.blinded, b.blinded)
