"""Tests for the versioned model store and the shared profile table.

Three properties matter:

1. both store implementations run the exact same publish/release
   bookkeeping (refcounts, content dedup, version allocation);
2. shared-memory segments never outlive the store — eviction, ``close()``,
   ``__exit__`` and even a crashed worker leave ``/dev/shm`` clean;
3. the profile table's staging mirrors the round commit protocol.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.history import ModelHistory
from repro.fl.model_store import (
    InProcessModelStore,
    SharedMemoryModelStore,
    ValidatorProfileTable,
    make_model_store,
)
from repro.nn.models import make_mlp
from tests.conftest import shm_entries

STORES = [InProcessModelStore, SharedMemoryModelStore]


@pytest.mark.parametrize("store_cls", STORES)
class TestStoreBookkeeping:
    def test_publish_get_roundtrip(self, store_cls, rng):
        with store_cls() as store:
            flat = rng.normal(size=64)
            version = store.publish(flat)
            np.testing.assert_array_equal(store.get(version), flat)
            assert not store.get(version).flags.writeable

    def test_versions_allocate_monotonically(self, store_cls, rng):
        with store_cls() as store:
            versions = [store.publish_new(rng.normal(size=8)) for _ in range(4)]
            assert versions == [0, 1, 2, 3]
            assert store.versions() == versions

    def test_publish_deduplicates_live_content(self, store_cls, rng):
        with store_cls() as store:
            flat = rng.normal(size=16)
            first = store.publish(flat)
            published = store.bytes_published
            again = store.publish(flat.copy())
            assert again == first
            assert store.bytes_published == published  # dedup hit: 0 bytes
            assert store.refcount(first) == 2

    def test_publish_new_never_deduplicates(self, store_cls, rng):
        with store_cls() as store:
            flat = rng.normal(size=16)
            assert store.publish_new(flat) != store.publish_new(flat)

    def test_release_evicts_at_zero(self, store_cls, rng):
        with store_cls() as store:
            version = store.publish(rng.normal(size=8))
            store.acquire(version)
            store.release(version)
            assert version in store
            store.release(version)
            assert version not in store
            with pytest.raises(KeyError):
                store.get(version)
            with pytest.raises(KeyError):
                store.release(version)

    def test_release_of_duplicate_keeps_dedup_for_live_twin(self, store_cls, rng):
        """Regression: releasing one of two live versions with identical
        content (a rejected candidate bit-identical to the global model)
        must not orphan dedup for the surviving twin."""
        with store_cls() as store:
            flat = rng.normal(size=16)
            first = store.publish(flat)
            twin = store.publish_new(flat)
            store.release(twin)
            assert store.publish(flat) == first

    def test_get_preserves_exact_vector_length(self, store_cls, rng):
        """Stored lengths are exact even where the platform page-rounds
        shared-memory segment sizes (macOS)."""
        with store_cls() as store:
            version = store.publish(rng.normal(size=3))
            assert store.get(version).shape == (3,)

    def test_dedup_does_not_resurrect_released_content(self, store_cls, rng):
        with store_cls() as store:
            flat = rng.normal(size=8)
            first = store.publish(flat)
            store.release(first)
            assert store.publish(flat) != first  # fresh version, not a ghost

    def test_adopt_preserves_explicit_versions(self, store_cls, rng):
        with store_cls() as store:
            store.adopt(7, rng.normal(size=8))
            assert store.versions() == [7]
            assert store.publish_new(rng.normal(size=8)) == 8  # counter jumped
            with pytest.raises(ValueError):
                store.adopt(7, rng.normal(size=8))

    def test_min_live_version(self, store_cls, rng):
        with store_cls() as store:
            assert store.min_live_version() is None
            a = store.publish_new(rng.normal(size=8))
            b = store.publish_new(rng.normal(size=8))
            assert store.min_live_version() == a
            store.release(a)
            assert store.min_live_version() == b

    def test_non_flat_vector_rejected(self, store_cls, rng):
        with store_cls() as store:
            with pytest.raises(ValueError):
                store.publish(rng.normal(size=(4, 4)))

    def test_publish_after_close_rejected(self, store_cls, rng):
        store = store_cls()
        store.close()
        with pytest.raises(RuntimeError):
            store.publish(rng.normal(size=8))


class TestSharedMemoryLifecycle:
    def test_segment_exists_while_live_and_unlinks_on_release(self, rng):
        with SharedMemoryModelStore() as store:
            version = store.publish(rng.normal(size=32))
            assert shm_entries(store.name_prefix) == [store.segment_name(version)]
            store.release(version)
            assert shm_entries(store.name_prefix) == []

    def test_close_unlinks_everything(self, rng):
        store = SharedMemoryModelStore()
        for _ in range(3):
            store.publish_new(rng.normal(size=32))
        assert len(shm_entries(store.name_prefix)) == 3
        store.close()
        assert shm_entries(store.name_prefix) == []
        store.close()  # idempotent

    def test_context_manager_unlinks_on_exception(self, rng):
        store = SharedMemoryModelStore()
        with pytest.raises(RuntimeError):
            with store:
                store.publish(rng.normal(size=32))
                raise RuntimeError("boom")
        assert shm_entries(store.name_prefix) == []

    def test_worker_view_reads_parent_segments(self, rng):
        with SharedMemoryModelStore() as store:
            flat = rng.normal(size=32)
            version = store.publish(flat)
            view = store.worker_handle().attach()
            np.testing.assert_array_equal(view.get(version, 32), flat)
            assert not view.get(version, 32).flags.writeable
            view.evict_below(version + 1)
            view.close()

    def test_worker_crash_leaks_nothing(self, rng, tmp_path):
        """A worker that dies mid-pool leaves /dev/shm cleanup to the owner."""
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        store = SharedMemoryModelStore()
        store.publish(rng.normal(size=32))
        with ProcessPoolExecutor(max_workers=1) as pool:
            with pytest.raises(BrokenProcessPool):
                pool.submit(_attach_and_die, store.name_prefix).result()
        assert len(shm_entries(store.name_prefix)) == 1  # owner still live
        store.close()
        assert shm_entries(store.name_prefix) == []


def _attach_and_die(prefix: str) -> None:
    """Worker-side helper: attach to the arena, then crash hard."""
    from repro.fl.model_store import ShmStoreHandle

    view = ShmStoreHandle(prefix).attach()
    view.get(0, 32)
    os._exit(1)  # simulate a hard crash (no interpreter cleanup)


class TestMakeModelStore:
    def test_auto_follows_worker_count(self):
        with make_model_store(0, "auto") as store:
            assert isinstance(store, InProcessModelStore)
        with make_model_store(2, "auto") as store:
            assert isinstance(store, SharedMemoryModelStore)

    def test_forced_kinds(self):
        with make_model_store(4, "inprocess") as store:
            assert isinstance(store, InProcessModelStore)
        with make_model_store(0, "shared") as store:
            assert isinstance(store, SharedMemoryModelStore)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_model_store(0, "quantum")


class TestStoreBackedHistory:
    def test_append_publishes_and_eviction_releases(self, rng):
        model = make_mlp(2, 2, rng, hidden=(4,))
        with InProcessModelStore() as store:
            history = ModelHistory(max_models=2, store=store)
            for _ in range(4):
                model.set_flat(model.get_flat() + 1.0)
                history.append(model)
            assert history.versions() == [2, 3]
            assert store.versions() == [2, 3]  # evicted versions released

    def test_staging_commit_is_refcount_transfer(self, rng):
        model = make_mlp(2, 2, rng, hidden=(4,))
        with SharedMemoryModelStore() as store:
            history = ModelHistory(max_models=3, store=store)
            version = history.stage_candidate(model)
            published = store.bytes_published
            assert history.staged_version == version
            assert history.commit_staged() == version
            assert store.bytes_published == published  # no second copy
            assert history.versions() == [version]
            np.testing.assert_array_equal(
                history.latest()[1].get_flat(), model.get_flat()
            )

    def test_discard_staged_releases_segment(self, rng):
        model = make_mlp(2, 2, rng, hidden=(4,))
        with SharedMemoryModelStore() as store:
            history = ModelHistory(max_models=3, store=store)
            version = history.stage_candidate(model)
            assert version in store
            history.discard_staged()
            assert version not in store
            assert shm_entries(store.name_prefix) == []

    def test_restaging_releases_unresolved_candidate(self, rng):
        model = make_mlp(2, 2, rng, hidden=(4,))
        with InProcessModelStore() as store:
            history = ModelHistory(max_models=3, store=store)
            first = history.stage_candidate(model)
            second = history.stage_candidate(model)
            assert first not in store
            assert history.staged_version == second

    def test_commit_without_stage_rejected(self):
        with pytest.raises(RuntimeError):
            ModelHistory(max_models=2).commit_staged()

    def test_bind_store_migrates_versions(self, rng):
        model = make_mlp(2, 2, rng, hidden=(4,))
        history = ModelHistory(max_models=3)
        flats = []
        for _ in range(3):
            model.set_flat(model.get_flat() + 1.0)
            flats.append(model.get_flat())
            history.append(model)
        with SharedMemoryModelStore() as target:
            history.bind_store(target)
            assert history.store is target
            assert target.versions() == [0, 1, 2]
            for version, expected in zip([0, 1, 2], flats):
                np.testing.assert_array_equal(target.get(version), expected)
            # Future appends allocate past the migrated numbering.
            model.set_flat(model.get_flat() + 1.0)
            assert history.append(model) == 3

    def test_bind_store_while_staged_rejected(self, rng):
        model = make_mlp(2, 2, rng, hidden=(4,))
        history = ModelHistory(max_models=2)
        history.stage_candidate(model)
        with pytest.raises(RuntimeError):
            history.bind_store(InProcessModelStore())

    def test_eviction_listener_fires_per_retired_version(self, rng):
        model = make_mlp(2, 2, rng, hidden=(4,))
        history = ModelHistory(max_models=2)
        evicted: list[int] = []
        history.add_eviction_listener(evicted.append)
        for _ in range(4):
            history.append(model)
        assert evicted == [0, 1]


class TestValidatorProfileTable:
    def test_put_get_and_hints(self):
        table = ValidatorProfileTable()
        table.put(3, 10, "p310")
        table.put(3, 11, "p311")
        table.put(4, 10, "p410")
        assert table.get(3, 10) == "p310"
        assert table.hints(3, [9, 10, 11]) == {10: "p310", 11: "p311"}
        assert table.hints(5, [10]) == {}

    def test_staged_profiles_commit_under_version(self):
        table = ValidatorProfileTable()
        table.stage(1, 7, "c1")
        table.stage(2, 7, "c2")
        assert table.staged_count == 2
        table.commit_staged(version=7)
        assert table.staged_count == 0
        assert table.get(1, 7) == "c1"
        assert table.get(2, 7) == "c2"

    def test_rejected_candidates_are_discarded(self):
        table = ValidatorProfileTable()
        table.stage(1, 7, "c1")
        table.discard_staged()
        table.commit_staged(version=7)
        assert len(table) == 0

    def test_concurrent_rounds_stage_independently(self):
        """Pipelined rounds overlap: staging is keyed by candidate version,
        so resolving round r must not touch round r+1's staged profiles."""
        table = ValidatorProfileTable()
        table.stage(1, 7, "r-candidate")
        table.stage(1, 8, "r+1-candidate")
        table.commit_staged(version=7)
        assert table.get(1, 7) == "r-candidate"
        assert table.staged_count == 1
        table.discard_staged(version=8)
        assert table.staged_count == 0
        assert table.get(1, 8) is None

    def test_staged_profiles_serve_as_hints(self):
        """A still-pending optimistic commit's profile is reusable by the
        next round's validators (versions are unique, content is fixed)."""
        table = ValidatorProfileTable()
        table.stage(1, 7, "pending")
        assert table.hints(1, [7]) == {7: "pending"}
        table.put(1, 7, "committed")
        assert table.hints(1, [7]) == {7: "committed"}

    def test_eviction_tracks_history(self):
        table = ValidatorProfileTable()
        for version in (5, 6, 7):
            table.put(1, version, f"p{version}")
            table.put(2, version, f"q{version}")
        table.evict_version(5)
        assert len(table) == 4
        assert table.get(1, 5) is None
        table.evict_version(6)
        assert len(table) == 2
        assert table.get(2, 7) == "q7"
