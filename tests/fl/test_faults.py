"""Tests for deterministic fault injection and the resilience layer.

The headline theorem under test: the full ``{sequential, pool, thread}
x {inprocess, shared} x {sync, pipelined}`` matrix commits bit-identical
models and decisions *under injected crashes, stragglers, and dropped
votes* — recovery is retry-by-replay over per-``(round, entity)`` RNG
streams, so a fault that was absorbed leaves no trace in the committed
trajectory (only in the resilience ledger).
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.baffle import BaffleConfig, BaffleDefense, ValidatorPool
from repro.core.validation import MisclassificationValidator
from repro.fl.faults import (
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
    ResilienceStats,
)
from repro.fl.model_store import (
    SHM_NAME_PREFIX,
    InProcessModelStore,
    SharedMemoryModelStore,
    reap_orphan_segments,
)
from repro.fl.parallel import (
    SequentialExecutor,
    ThreadPoolRoundExecutor,
    make_executor,
)
from repro.fl.simulation import FederatedSimulation
from tests.fl.test_parallel import (
    build_defended_sim,
    make_world,
    run_and_snapshot,
    shm_leftovers,
)


class TestFaultGrammar:
    def test_parse_roundtrips(self):
        spec = "crash@3.train;delay@4.validate.1=0.3;drop@5.vote.7"
        plan = FaultPlan.parse(spec)
        assert str(plan) == spec
        assert plan.specs == (
            FaultSpec("crash", 3, "train"),
            FaultSpec("delay", 4, "validate", index=1, param=0.3),
            FaultSpec("drop", 5, "vote", index=7),
        )

    def test_comma_and_semicolon_both_separate(self):
        plan = FaultPlan.parse("crash@1.train, crash@2.validate ;delay@3.train=1")
        assert len(plan.specs) == 3

    def test_none_and_empty_parse_to_the_empty_plan(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse(" ; ")
        assert not FaultPlan.empty()

    def test_existing_plan_passes_through(self):
        plan = FaultPlan.parse("crash@1.train")
        assert FaultPlan.parse(plan) is plan

    @pytest.mark.parametrize("bad, why", [
        ("explode@1.train", "unknown fault kind"),
        ("crash@1", "expected"),
        ("crash@1.vote", "task phase"),
        ("crash@1.train=2", "only delay"),
        ("drop@1.train.2", "target votes"),
        ("drop@1.vote", "validator id"),
        ("crash@one.train", "expected"),
    ])
    def test_bad_entries_rejected_with_context(self, bad, why):
        with pytest.raises(ValueError, match=why):
            FaultPlan.parse(bad)


class TestFaultPlanSemantics:
    def test_take_is_one_shot(self):
        plan = FaultPlan.parse("crash@2.train.1")
        assert plan.take("crash", 2, "train", 1) is not None
        assert plan.take("crash", 2, "train", 1) is None

    def test_omitted_index_matches_slot_zero_only(self):
        plan = FaultPlan.parse("delay@2.validate=0.5")
        assert plan.take("delay", 2, "validate", 1) is None
        taken = plan.take("delay", 2, "validate", 0)
        assert taken is not None and taken.param == 0.5

    def test_take_filters_on_kind_round_and_phase(self):
        plan = FaultPlan.parse("crash@2.train")
        assert plan.take("delay", 2, "train", 0) is None
        assert plan.take("crash", 3, "train", 0) is None
        assert plan.take("crash", 2, "validate", 0) is None
        assert plan.take("crash", 2, "train", 0) is not None

    def test_dropped_is_pure_and_per_round(self):
        plan = FaultPlan.parse("drop@5.vote.7;drop@5.vote.2;drop@6.vote.1")
        assert plan.dropped(5) == frozenset({2, 7})
        # Pure: a pipelined replay of the round sees the identical loss.
        assert plan.dropped(5) == frozenset({2, 7})
        assert plan.dropped(4) == frozenset()


class TestResilienceStats:
    def test_counters_accumulate_and_snapshot(self):
        stats = ResilienceStats()
        assert stats.total() == 0
        assert stats.inc("retries") == 1
        assert stats.inc("retries", 2) == 3
        stats.inc("dropped_votes")
        assert stats.as_dict()["retries"] == 3
        assert stats.total() == 4

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError, match="unknown resilience counter"):
            ResilienceStats().inc("typo_counter")


class TestOrphanReaper:
    def _dead_pid(self) -> int:
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True,
        )
        return int(proc.stdout)

    def test_dead_owner_segments_are_reaped(self, tmp_path):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        name = f"{SHM_NAME_PREFIX}-{self._dead_pid():x}-cafe0000-0"
        path = f"/dev/shm/{name}"
        with open(path, "wb") as f:
            f.write(b"orphan")
        try:
            reaped = reap_orphan_segments()
            assert name in reaped
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)

    def test_live_owner_and_kept_prefixes_survive(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        own = f"{SHM_NAME_PREFIX}-{os.getpid():x}-cafe0001-0"
        dead_pid = self._dead_pid()
        kept_prefix = f"{SHM_NAME_PREFIX}-{dead_pid:x}-cafe0002"
        kept = f"{kept_prefix}-0"
        for name in (own, kept):
            with open(f"/dev/shm/{name}", "wb") as f:
                f.write(b"x")
        try:
            reaped = reap_orphan_segments(keep_prefixes=(kept_prefix,))
            assert own not in reaped and kept not in reaped
            assert os.path.exists(f"/dev/shm/{own}")
            assert os.path.exists(f"/dev/shm/{kept}")
        finally:
            for name in (own, kept):
                if os.path.exists(f"/dev/shm/{name}"):
                    os.unlink(f"/dev/shm/{name}")

    def test_foreign_names_are_left_alone(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        # Not our naming scheme: no embedded pid to judge by.
        name = f"{SHM_NAME_PREFIX}-notahexpid"
        with open(f"/dev/shm/{name}", "wb") as f:
            f.write(b"x")
        try:
            assert name not in reap_orphan_segments()
            assert os.path.exists(f"/dev/shm/{name}")
        finally:
            os.unlink(f"/dev/shm/{name}")

    def test_executor_close_reaps_orphans(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        name = f"{SHM_NAME_PREFIX}-{self._dead_pid():x}-cafe0003-0"
        with open(f"/dev/shm/{name}", "wb") as f:
            f.write(b"orphan")
        try:
            store = SharedMemoryModelStore()
            with store, make_executor(2, store=store) as executor:
                pass
            assert executor.resilience.orphans_reaped >= 1
            assert not os.path.exists(f"/dev/shm/{name}")
        finally:
            if os.path.exists(f"/dev/shm/{name}"):
                os.unlink(f"/dev/shm/{name}")


class TestBindFaults:
    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="task_deadline_s"):
            SequentialExecutor().bind_faults(task_deadline_s=0)

    def test_spec_strings_are_parsed_at_bind(self):
        executor = SequentialExecutor()
        executor.bind_faults(plan="crash@1.train")
        assert isinstance(executor.fault_plan, FaultPlan)
        with pytest.raises(ValueError, match="fault"):
            executor.bind_faults(plan="explode@1.train")

    def test_pipelined_wrapper_forwards_to_inner(self):
        executor = make_executor(
            0, mode="pipelined", pipeline_depth=2, faults="crash@1.train"
        )
        assert executor.fault_plan
        assert executor.resilience is executor.inner.resilience

    def test_injected_worker_crash_is_a_runtime_error(self):
        assert issubclass(InjectedWorkerCrash, RuntimeError)


def _baseline():
    return run_and_snapshot(
        build_defended_sim(SequentialExecutor(), store=InProcessModelStore())
    )


class TestEngineRecovery:
    """Per-engine recovery semantics: the fault fires, the ledger records
    it, and the committed trajectory is bit-identical to fault-free."""

    def test_sequential_consumes_crash_and_delay_inline(self):
        base_flat, base_records = _baseline()
        with SequentialExecutor() as executor:
            executor.bind_faults(plan="crash@1.train;delay@2.validate=0.01")
            flat, records = run_and_snapshot(
                build_defended_sim(executor, store=InProcessModelStore())
            )
            stats = executor.resilience.as_dict()
        np.testing.assert_array_equal(base_flat, flat)
        assert base_records == records
        assert stats["retries"] == 1

    def test_pool_crash_rebuilds_and_replays(self):
        base_flat, base_records = _baseline()
        store = SharedMemoryModelStore()
        with store, make_executor(
            2, store=store, faults="crash@1.train;crash@2.validate"
        ) as executor:
            flat, records = run_and_snapshot(
                build_defended_sim(executor, store=store)
            )
            stats = executor.resilience.as_dict()
        np.testing.assert_array_equal(base_flat, flat)
        assert base_records == records
        assert stats["retries"] >= 2
        assert stats["pool_rebuilds"] >= 2
        assert shm_leftovers(store) == []

    def test_pool_straggler_is_reassigned_locally(self):
        base_flat, base_records = _baseline()
        store = SharedMemoryModelStore()
        with store, make_executor(
            2, store=store, faults="delay@3.train.0=1.5", task_deadline_s=0.5
        ) as executor:
            flat, records = run_and_snapshot(
                build_defended_sim(executor, store=store)
            )
            stats = executor.resilience.as_dict()
        np.testing.assert_array_equal(base_flat, flat)
        assert base_records == records
        assert stats["straggler_reassignments"] >= 1
        assert shm_leftovers(store) == []

    def test_thread_crash_retries_and_straggler_recomputes(self):
        base_flat, base_records = _baseline()
        with make_executor(
            2, engine="thread", store=InProcessModelStore(),
            faults="crash@1.train;crash@2.validate.1;delay@4.validate.0=1.5",
            task_deadline_s=0.5,
        ) as executor:
            flat, records = run_and_snapshot(
                build_defended_sim(executor, store=executor._store)
            )
            stats = executor.resilience.as_dict()
        np.testing.assert_array_equal(base_flat, flat)
        assert base_records == records
        assert stats["retries"] >= 2
        assert stats["straggler_reassignments"] >= 1

    def test_repeated_pool_death_demotes_to_thread_engine(self):
        """The degradation ladder: once the rebuild budget is spent, the
        pool executor hands the rest of the run to a thread engine — and
        the trajectory still matches fault-free sequential."""
        base_flat, base_records = _baseline()
        store = SharedMemoryModelStore()
        with store, make_executor(
            2, store=store, faults="crash@1.train"
        ) as executor:
            executor.bind_faults(max_pool_rebuilds=0)
            flat, records = run_and_snapshot(
                build_defended_sim(executor, store=store)
            )
            stats = executor.resilience.as_dict()
            assert isinstance(executor._demoted, ThreadPoolRoundExecutor)
            # One shared ledger down the ladder.
            assert executor._demoted.resilience is executor.resilience
        np.testing.assert_array_equal(base_flat, flat)
        assert base_records == records
        assert stats["engine_demotions"] >= 1
        assert shm_leftovers(store) == []


def build_policy_sim(executor, policy="strict", quorum_min=1, store=None):
    """A defended sim whose quorum policy is explicit (drop-fault tests)."""
    model, clients, server_data, config = make_world()
    pool = ValidatorPool.from_datasets(
        {c.client_id: c.dataset for c in clients}, min_history=4
    )
    defense = BaffleDefense(
        BaffleConfig(
            lookback=4, quorum=2, num_validators=3, mode="both",
            quorum_policy=policy, quorum_min=quorum_min,
        ),
        pool,
        MisclassificationValidator(server_data, min_history=4),
    )
    defense.prime(model)
    return FederatedSimulation(
        model.clone(), clients, config, np.random.default_rng(8),
        defense=defense, executor=executor, model_store=store,
    )


#: One of round 3's sampled validators in the ``build_policy_sim`` world
#: (seed-deterministic); dropping its vote shrinks that quorum to 2.
DROPPED_ROUND, DROPPED_VALIDATOR = 3, 3

#: The chaos plan the equivalence matrix runs under: a training-task
#: crash, a validation straggler, a dropped vote, and a validation crash.
CHAOS_FAULTS = (
    f"crash@1.train;delay@2.validate.0=1.5;"
    f"drop@{DROPPED_ROUND}.vote.{DROPPED_VALIDATOR};crash@5.validate"
)


class TestEquivalenceUnderFaults:
    """The acceptance matrix: ``{pool, thread} x {inprocess, shared} x
    {sync, pipelined}`` under crashes, stragglers, and a dropped vote
    (quorum policy ``degrade``) commits bit-identical models and accept
    decisions to the fault-free sequential baseline."""

    @pytest.fixture(scope="class")
    def fault_free(self):
        with SequentialExecutor() as executor:
            sim = build_policy_sim(executor, store=InProcessModelStore())
            records = sim.run(8)
            flat = sim.global_model.get_flat()
        return flat, [
            (r.round_idx, tuple(r.contributor_ids), r.accepted)
            for r in records
        ]

    @pytest.mark.parametrize("mode", ["sync", "pipelined"])
    @pytest.mark.parametrize("engine", ["process", "thread"])
    @pytest.mark.parametrize(
        "store_cls", [InProcessModelStore, SharedMemoryModelStore]
    )
    def test_faulty_run_matches_fault_free_baseline(
        self, fault_free, engine, store_cls, mode
    ):
        base_flat, base_decisions = fault_free
        store = store_cls()
        with store, make_executor(
            2, store=store, engine=engine, mode=mode, pipeline_depth=0,
            faults=CHAOS_FAULTS, task_deadline_s=0.5,
        ) as executor:
            sim = build_policy_sim(executor, policy="degrade", store=store)
            records = sim.run(8)
            flat = sim.global_model.get_flat()
            stats = executor.resilience.as_dict()
        np.testing.assert_array_equal(base_flat, flat)
        assert [
            (r.round_idx, tuple(r.contributor_ids), r.accepted)
            for r in records
        ] == base_decisions
        # The faults really fired: recovery left its marks in the ledger,
        # not in the trajectory.
        assert stats["retries"] > 0
        assert stats["straggler_reassignments"] >= 1
        assert stats["dropped_votes"] == 1
        assert stats["quorum_degradations"] == 1
        # The shrunken quorum is visible on the record, with the dropped
        # validator absent from the vote map.
        dropped = records[DROPPED_ROUND]
        assert dropped.quorum_size == 2
        assert dropped.decision.quorum_degraded
        assert DROPPED_VALIDATOR not in dropped.decision.client_votes
        if isinstance(store, SharedMemoryModelStore):
            assert shm_leftovers(store) == []
