"""Unit tests for repro.fl.simulation.FederatedSimulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.simulation import DefenseDecision, FederatedSimulation
from repro.nn.models import make_mlp


@pytest.fixture
def small_world(rng):
    """6 honest clients on a separable 3-class problem + a model."""
    centers = np.array([[2.0, 0.0], [-2.0, 1.5], [0.0, -2.5]])
    labels = np.tile(np.arange(3), 80)
    x = centers[labels] + rng.normal(0.0, 0.4, size=(240, 2))
    pool = Dataset(x, labels, 3)
    parts = iid_partition(len(pool), 6, rng)
    clients = [HonestClient(i, pool.subset(p)) for i, p in enumerate(parts)]
    model = make_mlp(2, 3, rng, hidden=(8,))
    config = FLConfig(num_clients=6, clients_per_round=3, local_epochs=1, batch_size=16)
    return model, clients, config


class RejectEverything:
    """A defense stub that rejects every round."""

    def __init__(self):
        self.outcomes = []

    def review(self, candidate, round_idx, rng):
        return DefenseDecision(accepted=False, reject_votes=1, num_validators=1)

    def record_outcome(self, candidate, accepted):
        self.outcomes.append(accepted)


class TestRoundLoop:
    def test_round_records_have_sequential_indices(self, small_world, rng):
        model, clients, config = small_world
        sim = FederatedSimulation(model, clients, config, rng)
        records = sim.run(4)
        assert [r.round_idx for r in records] == [0, 1, 2, 3]

    def test_model_changes_each_round(self, small_world, rng):
        model, clients, config = small_world
        sim = FederatedSimulation(model, clients, config, rng)
        before = sim.global_model.get_flat()
        sim.run_round()
        assert not np.allclose(sim.global_model.get_flat(), before)

    def test_accuracy_improves_over_rounds(self, small_world, rng):
        model, clients, config = small_world
        all_data = Dataset.concat([c.dataset for c in clients])
        sim = FederatedSimulation(model, clients, config, rng)
        before = (sim.global_model.predict(all_data.x) == all_data.y).mean()
        sim.run(15)
        after = (sim.global_model.predict(all_data.x) == all_data.y).mean()
        assert after > before
        assert after > 0.9

    def test_metric_hooks_recorded(self, small_world, rng):
        model, clients, config = small_world
        sim = FederatedSimulation(
            model, clients, config, rng,
            metric_hooks={"norm": lambda m: float(np.linalg.norm(m.get_flat()))},
        )
        record = sim.run_round()
        assert "norm" in record.metrics


class TestDefenseIntegration:
    def test_rejection_keeps_model(self, small_world, rng):
        model, clients, config = small_world
        defense = RejectEverything()
        sim = FederatedSimulation(model, clients, config, rng, defense=defense)
        before = sim.global_model.get_flat().copy()
        record = sim.run_round()
        assert not record.accepted
        np.testing.assert_array_equal(sim.global_model.get_flat(), before)

    def test_defense_notified_of_outcome(self, small_world, rng):
        model, clients, config = small_world
        defense = RejectEverything()
        sim = FederatedSimulation(model, clients, config, rng, defense=defense)
        sim.run(3)
        assert defense.outcomes == [False, False, False]

    def test_no_defense_accepts_everything(self, small_world, rng):
        model, clients, config = small_world
        sim = FederatedSimulation(model, clients, config, rng)
        records = sim.run(3)
        assert all(r.accepted for r in records)


class TestSecureAggregationPath:
    def test_secure_agg_matches_fedavg(self, small_world):
        model, clients, config = small_world
        plain = FederatedSimulation(
            model.clone(), clients, config, np.random.default_rng(42)
        )
        secure = FederatedSimulation(
            model.clone(), clients, config, np.random.default_rng(42),
            use_secure_agg=True,
        )
        plain.run(3)
        secure.run(3)
        np.testing.assert_allclose(
            plain.global_model.get_flat(),
            secure.global_model.get_flat(),
            atol=1e-9,
        )

    def test_incompatible_aggregator_rejected(self, small_world, rng):
        from repro.baselines.krum import KrumAggregator

        model, clients, config = small_world
        with pytest.raises(ValueError):
            FederatedSimulation(
                model, clients, config, rng,
                aggregator=KrumAggregator(num_malicious=0),
                use_secure_agg=True,
            )


class TestConstruction:
    def test_client_count_mismatch_rejected(self, small_world, rng):
        model, clients, config = small_world
        with pytest.raises(ValueError):
            FederatedSimulation(model, clients[:-1], config, rng)

    def test_misordered_clients_rejected(self, small_world, rng):
        model, clients, config = small_world
        reordered = list(reversed(clients))
        with pytest.raises(ValueError):
            FederatedSimulation(model, reordered, config, rng)
