"""Tests for stacked cohort client training (repro.fl.cohort) and its
executor integration.

The headline guarantee: a cohort-enabled engine — any executor, any store,
any execution mode, any cohort size — commits **bit-identical** models and
round records to the seed-baseline sequential per-model engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.fl.client import HonestClient, LocalTrainingConfig
from repro.fl.cohort import cohort_updates, is_cohortable, plan_cohorts
from repro.fl.model_store import InProcessModelStore, SharedMemoryModelStore
from repro.fl.parallel import SequentialExecutor, make_executor
from repro.fl.rng import RngStreams
from repro.nn.models import make_mlp, make_resnet_lite
from tests.fl.test_parallel import (
    build_defended_sim,
    make_world,
    run_and_snapshot,
    shm_leftovers,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def _shards(rng, sizes, features=9, classes=4):
    shards = []
    for n in sizes:
        x = rng.normal(size=(n, features))
        y = rng.integers(0, classes, size=n)
        shards.append(Dataset(x, y, classes))
    return shards


def _per_model_updates(model, shards, config, seed0=100):
    return [
        HonestClient(i, shard).produce_update(
            model, config, 0, np.random.default_rng(seed0 + i)
        )
        for i, shard in enumerate(shards)
    ]


class TestCohortUpdatesBitIdentity:
    @pytest.mark.parametrize("sizes", [
        (64, 64, 64),            # uniform: one group per step
        (100, 64, 37, 5, 101),   # ragged tails, sub-batch shard
        (3,),                    # M == 1 degenerate stack
    ])
    def test_updates_match_per_model_training(self, rng, sizes):
        shards = _shards(rng, sizes)
        model = make_mlp(9, 4, rng, hidden=(7,))
        config = LocalTrainingConfig(
            epochs=2, batch_size=32, lr=0.1, momentum=0.9, weight_decay=1e-4
        )
        expected = _per_model_updates(model, shards, config)
        got = cohort_updates(
            model, shards, config,
            [np.random.default_rng(100 + i) for i in range(len(shards))],
        )
        assert len(got) == len(expected)
        for a, b in zip(expected, got):
            np.testing.assert_array_equal(a, b)

    def test_gradient_clipping_matches(self, rng):
        shards = _shards(rng, (40, 25, 33))
        model = make_mlp(9, 4, rng, hidden=(7,))
        config = LocalTrainingConfig(
            epochs=2, batch_size=16, lr=0.5, momentum=0.9, max_grad_norm=0.05
        )
        expected = _per_model_updates(model, shards, config)
        got = cohort_updates(
            model, shards, config, [np.random.default_rng(100 + i) for i in range(3)]
        )
        for a, b in zip(expected, got):
            np.testing.assert_array_equal(a, b)

    def test_dropout_streams_match(self, rng):
        shards = _shards(rng, (48, 31))
        model = make_mlp(9, 4, rng, hidden=(7,), dropout=0.3)
        config = LocalTrainingConfig(epochs=2, batch_size=16, lr=0.1, momentum=0.9)
        expected = _per_model_updates(model, shards, config)
        got = cohort_updates(
            model, shards, config, [np.random.default_rng(100 + i) for i in range(2)]
        )
        for a, b in zip(expected, got):
            np.testing.assert_array_equal(a, b)

    def test_empty_shard_rejected_like_per_model(self, rng):
        shards = _shards(rng, (10,)) + [Dataset(np.zeros((0, 9)), np.zeros(0, dtype=int), 4)]
        model = make_mlp(9, 4, rng, hidden=(7,))
        config = LocalTrainingConfig()
        with pytest.raises(ValueError, match="empty dataset"):
            cohort_updates(model, shards, config, [rng, rng])

    def test_shard_rng_count_mismatch_rejected(self, rng):
        model = make_mlp(9, 4, rng, hidden=(7,))
        with pytest.raises(ValueError, match="rng streams"):
            cohort_updates(model, _shards(rng, (10,)), LocalTrainingConfig(), [])


class TestEligibilityAndPlanning:
    def test_malicious_override_not_cohortable(self, rng):
        from repro.attacks.untargeted import SignFlipClient

        shard = _shards(rng, (12,))[0]
        assert is_cohortable(HonestClient(0, shard))
        assert not is_cohortable(
            SignFlipClient(1, shard, boost=2.0, attack_rounds=range(10))
        )

    def test_cohort_safe_opt_out_respected(self, rng):
        class OptOutClient(HonestClient):
            cohort_safe = False

        shard = _shards(rng, (12,))[0]
        assert not is_cohortable(OptOutClient(0, shard))

    def test_empty_dataset_not_cohortable(self):
        empty = Dataset(np.zeros((0, 3)), np.zeros(0, dtype=int), 2)
        assert not is_cohortable(HonestClient(0, empty))

    def test_plan_respects_size_order_and_spread(self, rng):
        shards = _shards(rng, [10] * 7)
        clients = [HonestClient(i, s) for i, s in enumerate(shards)]
        model = make_mlp(9, 4, rng, hidden=(5,))
        assert plan_cohorts(clients, [4, 2, 6], model, cohort_size=0) == []
        assert plan_cohorts(clients, [4, 2, 6], model, cohort_size=1) == []
        assert plan_cohorts(clients, [4, 2, 6], model, cohort_size=8) == [[4, 2, 6]]
        # Chunking caps at cohort_size; a single leftover is not stacked.
        assert plan_cohorts(clients, [0, 1, 2, 3, 4], model, cohort_size=2) == [
            [0, 1], [2, 3],
        ]
        # spread_over splits the fan-out across workers.
        assert plan_cohorts(
            clients, [0, 1, 2, 3, 4, 5], model, cohort_size=6, spread_over=2
        ) == [[0, 1, 2], [3, 4, 5]]

    def test_plan_skips_unstackable_architectures(self, rng):
        from repro.nn.activations import Tanh
        from repro.nn.layers import Dense
        from repro.nn.network import Network

        shards = _shards(rng, [10] * 2)
        clients = [HonestClient(i, s) for i, s in enumerate(shards)]
        unstackable = Network([Dense(9, 4, rng), Tanh()])
        assert plan_cohorts(clients, [0, 1], unstackable, cohort_size=4) == []
        # Residual networks gained stacking support and now plan normally.
        resnet = make_resnet_lite((1, 4, 4), 2, rng)
        assert plan_cohorts(clients, [0, 1], resnet, cohort_size=4) == [[0, 1]]


class TestExecutorIntegration:
    def test_sequential_cohort_matches_per_model(self):
        model, clients, _, config = make_world(seed=5)
        local = LocalTrainingConfig(
            epochs=config.local_epochs, batch_size=config.batch_size,
            lr=config.client_lr, momentum=config.client_momentum,
        )
        streams = RngStreams.from_seed(3)
        ids = [0, 2, 3, 5]
        baseline = SequentialExecutor().run_clients(
            clients, ids, model, local, 0, streams
        )
        cohorted = SequentialExecutor(cohort_size=3).run_clients(
            clients, ids, model, local, 0, streams
        )
        for a, b in zip(baseline, cohorted):
            np.testing.assert_array_equal(a, b)

    def test_pool_cohort_matches_per_model(self):
        model, clients, _, config = make_world(seed=5)
        local = LocalTrainingConfig(
            epochs=config.local_epochs, batch_size=config.batch_size,
            lr=config.client_lr, momentum=config.client_momentum,
        )
        streams = RngStreams.from_seed(3)
        ids = [0, 1, 2, 4, 5]
        baseline = SequentialExecutor().run_clients(
            clients, ids, model, local, 0, streams
        )
        with make_executor(2, cohort_size=4) as executor:
            executor.bind(clients=clients, template=model.clone())
            cohorted = executor.run_clients(clients, ids, model, local, 0, streams)
        for a, b in zip(baseline, cohorted):
            np.testing.assert_array_equal(a, b)

    def test_mixed_parent_and_cohort_clients(self):
        """A non-parallel-safe client runs in the parent while the rest
        stack in the workers; ordering is preserved."""
        model, clients, _, config = make_world(seed=5, home_client=2)
        local = LocalTrainingConfig(
            epochs=config.local_epochs, batch_size=config.batch_size,
            lr=config.client_lr, momentum=config.client_momentum,
        )
        streams = RngStreams.from_seed(3)
        ids = [0, 2, 4, 5]
        baseline = SequentialExecutor().run_clients(
            clients, ids, model, local, 0, streams
        )
        with make_executor(2, cohort_size=4) as executor:
            executor.bind(clients=clients, template=model.clone())
            cohorted = executor.run_clients(clients, ids, model, local, 0, streams)
        for a, b in zip(baseline, cohorted):
            np.testing.assert_array_equal(a, b)

    def test_invalid_cohort_size_rejected(self):
        with pytest.raises(ValueError):
            SequentialExecutor(cohort_size=-1)
        from repro.fl.parallel import ProcessPoolRoundExecutor

        with pytest.raises(ValueError):
            ProcessPoolRoundExecutor(2, cohort_size=-2)


class TestCohortEquivalenceMatrix:
    """Cohort-enabled engines commit bit-identical models and records to
    the seed-baseline per-model sequential engine — the full
    {Sequential, ProcessPool, Pipelined} x {InProcess, SharedMemory} grid."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return run_and_snapshot(
            build_defended_sim(SequentialExecutor(), store=InProcessModelStore())
        )

    @pytest.mark.parametrize("mode", ["sync", "pipelined"])
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize(
        "store_cls", [InProcessModelStore, SharedMemoryModelStore]
    )
    def test_bit_identical_commits(self, baseline, workers, store_cls, mode):
        baseline_flat, baseline_records = baseline
        store = store_cls()
        with store, make_executor(
            workers, store=store, mode=mode, pipeline_depth=2, cohort_size=3
        ) as executor:
            flat, records = run_and_snapshot(
                build_defended_sim(executor, store=store)
            )
        # Committed models match the seed-baseline sequential engine.
        np.testing.assert_array_equal(baseline_flat, flat)
        if isinstance(store, SharedMemoryModelStore):
            assert shm_leftovers(store) == []
        # Full records (including lag telemetry, which legitimately differs
        # between sync and deep-pipelined runs) match the same engine
        # without cohorting: stacking changes throughput only.
        twin_store = store_cls()
        with twin_store, make_executor(
            workers, store=twin_store, mode=mode, pipeline_depth=2, cohort_size=1
        ) as twin_executor:
            twin_flat, twin_records = run_and_snapshot(
                build_defended_sim(twin_executor, store=twin_store)
            )
        np.testing.assert_array_equal(twin_flat, flat)
        assert twin_records == records

    def test_cohort_survives_forced_rollback(self):
        """Pipelined + cohort + forced late rejections: the replayed rounds
        re-enter the cohort path and still commit bit-identically."""
        from tests.fl.test_pipelined import build_forced_sim, snapshot

        reject = (3, 5)
        sync_sim = build_forced_sim(SequentialExecutor(), reject_rounds=reject)
        sync_records = sync_sim.run(8)
        sync_flat = sync_sim.global_model.get_flat()

        store = SharedMemoryModelStore()
        with store, make_executor(
            2, store=store, mode="pipelined", pipeline_depth=2, cohort_size=3
        ) as executor:
            sim = build_forced_sim(executor, store=store, reject_rounds=reject)
            records = sim.run(8)
            flat = sim.global_model.get_flat()
        np.testing.assert_array_equal(sync_flat, flat)
        assert snapshot(sync_records) == snapshot(records)
        assert any(r.rollback_count > 0 for r in records)
        assert shm_leftovers(store) == []
