"""Unit tests for repro.fl.config.FLConfig."""

from __future__ import annotations

import pytest

from repro.fl.config import FLConfig


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_clients": 0},
            {"clients_per_round": 0},
            {"num_clients": 5, "clients_per_round": 6},
            {"local_epochs": 0},
            {"batch_size": 0},
            {"client_lr": 0.0},
            {"global_lr": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FLConfig(**kwargs)

    def test_defaults_valid(self):
        FLConfig()


class TestDerivedQuantities:
    def test_default_global_lr_is_full_replacement(self):
        cfg = FLConfig(num_clients=100, clients_per_round=10)
        assert cfg.effective_global_lr == 10.0

    def test_explicit_global_lr_respected(self):
        cfg = FLConfig(num_clients=100, clients_per_round=10, global_lr=1.0)
        assert cfg.effective_global_lr == 1.0

    def test_replacement_boost_inverse_of_lambda(self):
        cfg = FLConfig(num_clients=30, clients_per_round=10, global_lr=1.0)
        assert cfg.replacement_boost == 30.0

    def test_boost_with_default_lambda_equals_n(self):
        cfg = FLConfig(num_clients=100, clients_per_round=10)
        assert cfg.replacement_boost == 10.0
