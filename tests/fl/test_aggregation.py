"""Unit + property tests for repro.fl.aggregation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.aggregation import FedAvgAggregator, apply_global_update


class TestFedAvg:
    def test_mean_of_updates(self, rng):
        agg = FedAvgAggregator()
        updates = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        np.testing.assert_allclose(agg.aggregate(updates, rng), [2.0, 3.0])

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            FedAvgAggregator().aggregate([], rng)

    def test_secure_agg_compatible_flag(self):
        assert not FedAvgAggregator().requires_individual_updates

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        n=st.integers(1, 10),
        dim=st.integers(1, 20),
        scale=st.floats(0.1, 10.0),
    )
    def test_linearity_property(self, seed, n, dim, scale):
        """FedAvg(c * U) == c * FedAvg(U): the mean is linear."""
        rng = np.random.default_rng(seed)
        updates = [rng.normal(size=dim) for _ in range(n)]
        agg = FedAvgAggregator()
        lhs = agg.aggregate([scale * u for u in updates], rng)
        rhs = scale * agg.aggregate(updates, rng)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10)


class TestApplyGlobalUpdate:
    def test_full_replacement_with_default_lambda(self, rng):
        """lambda = N/n makes G' = G + mean(U)."""
        g = rng.normal(size=5)
        mean_update = rng.normal(size=5)
        out = apply_global_update(g, mean_update, num_selected=10, global_lr=10.0, num_clients=100)
        np.testing.assert_allclose(out, g + mean_update)

    def test_damped_update(self, rng):
        g = np.zeros(3)
        mean_update = np.ones(3)
        out = apply_global_update(g, mean_update, num_selected=10, global_lr=1.0, num_clients=30)
        np.testing.assert_allclose(out, np.full(3, 10.0 / 30.0))

    def test_paper_formula(self, rng):
        """G' = G + (lambda/N) * sum_i U_i, via the mean interface."""
        g = rng.normal(size=4)
        updates = [rng.normal(size=4) for _ in range(5)]
        lam, n_clients = 2.0, 50
        expected = g + (lam / n_clients) * np.sum(updates, axis=0)
        out = apply_global_update(
            g, np.mean(updates, axis=0), num_selected=5, global_lr=lam, num_clients=n_clients
        )
        np.testing.assert_allclose(out, expected)

    @pytest.mark.parametrize("kwargs", [
        {"num_selected": 0, "global_lr": 1.0, "num_clients": 10},
        {"num_selected": 5, "global_lr": 0.0, "num_clients": 10},
    ])
    def test_invalid_args(self, kwargs, rng):
        with pytest.raises(ValueError):
            apply_global_update(np.zeros(2), np.zeros(2), **kwargs)
