"""Tests for the parallel round engine and its keyed RNG streams.

The headline guarantee: a :class:`ProcessPoolRoundExecutor` run commits
**bit-identical** global models and round records to a
:class:`SequentialExecutor` run under the same seed.  Everything here
defends that property.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baffle import BaffleConfig, BaffleDefense, ValidatorPool
from repro.core.validation import MisclassificationValidator
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.fl.client import HonestClient, LocalTrainingConfig
from repro.fl.config import FLConfig
from repro.fl.model_store import (
    InProcessModelStore,
    SharedMemoryModelStore,
)
from repro.fl.parallel import (
    ProcessPoolRoundExecutor,
    SequentialExecutor,
    ThreadPoolRoundExecutor,
    make_engine,
    make_executor,
)
from repro.fl.rng import RngStreams
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp


class StayAtHomeClient(HonestClient):
    """An honest client that must run in the parent process."""

    parallel_safe = False


def make_world(seed: int = 7, num_clients: int = 6, home_client: int | None = None):
    """A separable 3-class federated world with per-client validators."""
    rng = np.random.default_rng(seed)
    centers = np.array([[2.0, 0.0], [-2.0, 1.5], [0.0, -2.5]])
    labels = np.tile(np.arange(3), 120)
    x = centers[labels] + rng.normal(0.0, 0.4, size=(len(labels), 2))
    pool = Dataset(x, labels, 3)
    parts = iid_partition(len(pool), num_clients + 1, rng)
    shards = [pool.subset(p) for p in parts]
    clients = [
        (StayAtHomeClient if i == home_client else HonestClient)(i, shards[i])
        for i in range(num_clients)
    ]
    server_data = shards[num_clients]
    model = make_mlp(2, 3, rng, hidden=(8,))
    config = FLConfig(num_clients=num_clients, clients_per_round=3, local_epochs=1,
                      batch_size=16)
    return model, clients, server_data, config


def build_defended_sim(
    executor,
    seed: int = 7,
    home_client: int | None = None,
    prime: bool = True,
    store=None,
    lookback: int = 4,
    num_validators: int = 3,
):
    model, clients, server_data, config = make_world(seed, home_client=home_client)
    validator_pool = ValidatorPool.from_datasets(
        {c.client_id: c.dataset for c in clients}, min_history=4
    )
    defense = BaffleDefense(
        BaffleConfig(
            lookback=lookback, quorum=2, num_validators=num_validators, mode="both"
        ),
        validator_pool,
        MisclassificationValidator(server_data, min_history=4),
    )
    if prime:
        defense.prime(model)
    return FederatedSimulation(
        model.clone(), clients, config, np.random.default_rng(seed + 1),
        defense=defense, executor=executor, model_store=store,
    )


def run_and_snapshot(sim, rounds: int = 8):
    records = sim.run(rounds)
    return sim.global_model.get_flat(), [
        (
            r.round_idx,
            tuple(r.contributor_ids),
            r.accepted,
            r.decision.reject_votes,
            dict(r.decision.client_votes),
            r.decision.server_vote,
            # Telemetry must agree too: a sync run and a depth-0 pipelined
            # run both resolve every round within itself.
            r.accepted_at_round,
            r.validation_lag,
            r.rollback_count,
        )
        for r in records
    ]


class TestRngStreams:
    def test_keyed_streams_are_reproducible(self):
        a = RngStreams.from_seed(3)
        b = RngStreams.from_seed(3)
        assert a.client_rng(5, 2).random() == b.client_rng(5, 2).random()
        assert a.validator_rng(5, 2).random() == b.validator_rng(5, 2).random()

    def test_domains_rounds_and_entities_are_independent(self):
        streams = RngStreams.from_seed(3)
        draws = {
            streams.client_rng(5, 2).random(),
            streams.validator_rng(5, 2).random(),
            streams.client_rng(6, 2).random(),
            streams.client_rng(5, 3).random(),
            streams.server_rng(5).random(),
        }
        assert len(draws) == 5

    def test_from_rng_consumes_no_draws(self):
        rng = np.random.default_rng(11)
        RngStreams.from_rng(rng)
        assert rng.random() == np.random.default_rng(11).random()

    def test_from_rng_is_deterministic_per_generator(self):
        a = RngStreams.from_rng(np.random.default_rng(11))
        b = RngStreams.from_rng(np.random.default_rng(11))
        assert a.client_rng(0, 0).random() == b.client_rng(0, 0).random()

    def test_negative_keys_rejected(self):
        with pytest.raises(ValueError):
            RngStreams.from_seed(0).client_seq(-1, 0)


class TestSequentialOrderIndependence:
    def test_client_updates_do_not_depend_on_execution_order(self):
        model, clients, _, config = make_world()
        local_cfg = LocalTrainingConfig(epochs=1, batch_size=16, lr=0.1)
        streams = RngStreams.from_seed(0)
        executor = SequentialExecutor()
        forward = executor.run_clients(clients, [0, 1, 2], model, local_cfg, 0, streams)
        backward = executor.run_clients(clients, [2, 1, 0], model, local_cfg, 0, streams)
        for update_f, update_b in zip(forward, reversed(backward)):
            np.testing.assert_array_equal(update_f, update_b)


class TestMakeExecutor:
    def test_zero_and_one_worker_fall_back_to_sequential(self):
        assert isinstance(make_executor(0), SequentialExecutor)
        assert isinstance(make_executor(1), SequentialExecutor)

    def test_multiple_workers_build_a_process_pool(self):
        executor = make_executor(2)
        assert isinstance(executor, ProcessPoolRoundExecutor)
        executor.close()

    def test_thread_engine_builds_a_thread_pool(self):
        executor = make_executor(2, engine="thread")
        assert isinstance(executor, ThreadPoolRoundExecutor)
        executor.close()
        assert isinstance(make_executor(0, engine="thread"), SequentialExecutor)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            make_executor(2, engine="fiber")
        with pytest.raises(ValueError, match="engine"):
            make_engine(2, engine="fiber")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            make_executor(-1)

    def test_pool_requires_two_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolRoundExecutor(1)
        with pytest.raises(ValueError):
            ThreadPoolRoundExecutor(1)


class TestSequentialParallelEquivalence:
    def test_defended_runs_commit_bit_identical_models_and_records(self):
        seq_flat, seq_records = run_and_snapshot(
            build_defended_sim(SequentialExecutor())
        )
        with make_executor(2) as executor:
            par_flat, par_records = run_and_snapshot(build_defended_sim(executor))
        np.testing.assert_array_equal(seq_flat, par_flat)
        assert seq_records == par_records

    def test_parent_fallback_clients_preserve_equivalence(self):
        """Clients with ``parallel_safe = False`` run in the parent but
        must not perturb the committed trajectory."""
        seq_flat, seq_records = run_and_snapshot(
            build_defended_sim(SequentialExecutor())
        )
        with make_executor(2) as executor:
            par_flat, par_records = run_and_snapshot(
                build_defended_sim(executor, home_client=1)
            )
        np.testing.assert_array_equal(seq_flat, par_flat)
        assert seq_records == par_records

    def test_empty_history_round_abstains_in_both_engines(self):
        """Regression: an unprimed defense reviews round 0 with an empty
        history; worker-side validation must abstain like the sequential
        path instead of crashing on the empty history."""
        seq_flat, seq_records = run_and_snapshot(
            build_defended_sim(SequentialExecutor(), prime=False), rounds=3
        )
        with make_executor(2) as executor:
            par_flat, par_records = run_and_snapshot(
                build_defended_sim(executor, prime=False), rounds=3
            )
        np.testing.assert_array_equal(seq_flat, par_flat)
        assert seq_records == par_records

    def test_undefended_run_equivalence(self):
        model, clients, _, config = make_world()
        sims = []
        for executor in (SequentialExecutor(), make_executor(2)):
            with executor:
                sim = FederatedSimulation(
                    model.clone(), clients, config,
                    np.random.default_rng(3), executor=executor,
                )
                sim.run(4)
                sims.append(sim.global_model.get_flat())
        np.testing.assert_array_equal(sims[0], sims[1])


class TestExecutorLifecycle:
    def test_bind_after_pool_start_rejected(self):
        model, clients, _, config = make_world()
        with make_executor(2) as executor:
            sim = FederatedSimulation(
                model.clone(), clients, config,
                np.random.default_rng(3), executor=executor,
            )
            sim.run_round()
            with pytest.raises(RuntimeError):
                executor.bind(clients=clients)

    def test_executor_reuse_across_simulations_rejected(self):
        """One executor per simulation: a second bind of the same
        population must fail loudly, not silently retrain the wrong world."""
        model, clients, _, config = make_world()
        with make_executor(2) as executor:
            FederatedSimulation(
                model.clone(), clients, config,
                np.random.default_rng(3), executor=executor,
            )
            with pytest.raises(RuntimeError, match="one executor per simulation"):
                FederatedSimulation(
                    model.clone(), clients, config,
                    np.random.default_rng(4), executor=executor,
                )

    def test_pool_without_template_rejected(self):
        executor = ProcessPoolRoundExecutor(2)
        model, clients, _, config = make_world()
        streams = RngStreams.from_seed(0)
        with pytest.raises(RuntimeError):
            executor.run_clients(
                clients, [0], model, LocalTrainingConfig(epochs=1), 0, streams
            )
        executor.close()

    def test_close_is_idempotent(self):
        executor = make_executor(2)
        executor.close()
        executor.close()


class TestEngineFactory:
    """make_executor / make_engine route the store through one factory, so
    a pool can no longer silently fall back to pipe transport."""

    def test_make_executor_prebinds_store(self):
        store = SharedMemoryModelStore()
        with store, make_executor(2, store=store) as executor:
            assert executor.store is store

    def test_make_executor_prebinds_store_on_sequential_too(self):
        """A store passed for a 0/1-worker engine must not be dropped: the
        simulation adopts it from the executor for the defense history."""
        store = InProcessModelStore()
        executor = make_executor(1, store=store)
        assert executor.store is store
        model, clients, _, config = make_world()
        sim = FederatedSimulation(
            model.clone(), clients, config,
            np.random.default_rng(3), executor=executor,
        )
        assert sim.model_store is store

    def test_make_engine_pairs_executor_and_store(self):
        from repro.fl.parallel import RoundEngine

        with make_engine(2, store="shared") as engine:
            assert isinstance(engine, RoundEngine)
            assert engine.executor.store is engine.store
            assert isinstance(engine.store, SharedMemoryModelStore)
        assert engine.store.closed

    def test_make_engine_auto_matches_worker_count(self):
        with make_engine(0) as engine:
            assert isinstance(engine.store, InProcessModelStore)
            assert isinstance(engine.executor, SequentialExecutor)
        with make_engine(2) as engine:
            assert isinstance(engine.store, SharedMemoryModelStore)
            assert isinstance(engine.executor, ProcessPoolRoundExecutor)

    def test_simulation_adopts_executor_store(self):
        model, clients, _, config = make_world()
        store = SharedMemoryModelStore()
        with store, make_executor(2, store=store) as executor:
            sim = FederatedSimulation(
                model.clone(), clients, config,
                np.random.default_rng(3), executor=executor,
            )
            assert sim.model_store is store

    def test_simulation_rejects_conflicting_store(self):
        model, clients, _, config = make_world()
        store = SharedMemoryModelStore()
        with store, make_executor(2, store=store) as executor:
            with pytest.raises(ValueError, match="different model store"):
                FederatedSimulation(
                    model.clone(), clients, config,
                    np.random.default_rng(3), executor=executor,
                    model_store=InProcessModelStore(),
                )

    def test_pipelined_mode_wraps_and_validates(self):
        from repro.fl.parallel import PipelinedRoundExecutor

        executor = make_executor(0, mode="pipelined", pipeline_depth=2)
        assert isinstance(executor, PipelinedRoundExecutor)
        assert executor.pipeline_depth == 2
        with pytest.raises(ValueError, match="mode"):
            make_executor(0, mode="warp")
        with pytest.raises(ValueError, match="pipeline_depth"):
            make_executor(0, mode="pipelined", pipeline_depth=-1)
        with pytest.raises(ValueError, match="nest"):
            PipelinedRoundExecutor(executor)


def shm_leftovers(store) -> list[str]:
    from tests.conftest import shm_entries

    return shm_entries(store.name_prefix)


class TestStoreExecutorEquivalenceMatrix:
    """The spine of the refactor: every {executor mode} x {engine} x
    {store} x {workers} combination commits bit-identical models and round
    records — {Sequential, ProcessPool, Thread} x {InProcess,
    SharedMemory}, sync and pipelined.

    ``pipelined`` runs with ``pipeline_depth=0`` here — the degenerate
    setting that must reproduce synchronous semantics exactly (the
    deeper-pipeline equivalence lives in tests/fl/test_pipelined.py).
    """

    @pytest.mark.parametrize("mode", ["sync", "pipelined"])
    @pytest.mark.parametrize(
        "workers, engine",
        [(1, "process"), (2, "process"), (4, "process"), (2, "thread"),
         (4, "thread")],
    )
    @pytest.mark.parametrize(
        "store_cls", [InProcessModelStore, SharedMemoryModelStore]
    )
    def test_bit_identical_commits(self, workers, engine, store_cls, mode):
        baseline_flat, baseline_records = run_and_snapshot(
            build_defended_sim(SequentialExecutor(), store=InProcessModelStore())
        )
        store = store_cls()
        with store, make_executor(
            workers, store=store, mode=mode, pipeline_depth=0, engine=engine
        ) as executor:
            flat, records = run_and_snapshot(
                build_defended_sim(executor, store=store)
            )
        np.testing.assert_array_equal(baseline_flat, flat)
        assert baseline_records == records
        if isinstance(store, SharedMemoryModelStore):
            assert shm_leftovers(store) == []


class TestFloat32EquivalenceMatrix:
    """The float32 policy's own contract, mirroring the float64 matrix:
    {Sequential, ProcessPool, Thread} x {InProcess, SharedMemory} x
    {sync, pipelined} commit bit-identical *float32* models.  (float32
    runs are a different trajectory from float64 by construction — the
    policy is part of the contract's scope, not a violation of it.)"""

    @pytest.mark.parametrize("mode", ["sync", "pipelined"])
    @pytest.mark.parametrize(
        "workers, engine", [(2, "process"), (2, "thread")]
    )
    @pytest.mark.parametrize(
        "store_cls", [InProcessModelStore, SharedMemoryModelStore]
    )
    def test_bit_identical_float32_commits(self, workers, engine, store_cls, mode):
        from repro.nn.precision import dtype_policy

        with dtype_policy("float32"):
            baseline_flat, baseline_records = run_and_snapshot(
                build_defended_sim(
                    SequentialExecutor(), store=InProcessModelStore()
                )
            )
            assert baseline_flat.dtype == np.float32
            store = store_cls()
            with store, make_executor(
                workers, store=store, mode=mode, pipeline_depth=0, engine=engine
            ) as executor:
                flat, records = run_and_snapshot(
                    build_defended_sim(executor, store=store)
                )
        assert flat.dtype == np.float32
        np.testing.assert_array_equal(baseline_flat, flat)
        assert baseline_records == records
        if isinstance(store, SharedMemoryModelStore):
            assert shm_leftovers(store) == []

    def test_float32_halves_shared_memory_transport(self):
        """The point of the policy: the shm arena ships 4-byte scalars."""
        from repro.nn.precision import dtype_policy

        per_policy = {}
        for policy in ("float64", "float32"):
            with dtype_policy(policy):
                store = SharedMemoryModelStore()
                with store, make_executor(2, store=store) as executor:
                    sim = build_defended_sim(executor, store=store)
                    records = sim.run(4)
                per_policy[policy] = sum(r.transport_bytes for r in records)
        assert per_policy["float32"] * 2 == per_policy["float64"]


class TestRegistryEngineEquivalence:
    """A virtual ClientRegistry population commits bit-identically under
    every engine — workers materialize their own shard slices."""

    def _registry_world(self, seed: int = 7):
        from repro.fl.registry import ClientRegistry, LazyShardFactory, PartitionSpec

        rng = np.random.default_rng(seed)
        centers = np.array([[2.0, 0.0], [-2.0, 1.5], [0.0, -2.5]])
        labels = np.tile(np.arange(3), 120)
        x = centers[labels] + rng.normal(0.0, 0.4, size=(len(labels), 2))
        pool = Dataset(x, labels, 3)
        spec = PartitionSpec.iid(len(pool), 6, rng)
        registry = ClientRegistry(LazyShardFactory(pool, spec))
        model = make_mlp(2, 3, rng, hidden=(8,))
        config = FLConfig(num_clients=6, clients_per_round=3, local_epochs=1,
                          batch_size=16)
        return model, registry, config

    @pytest.mark.parametrize(
        "workers, engine",
        [(0, "process"), (2, "process"), (2, "thread")],
    )
    def test_registry_commits_match_sequential(self, workers, engine):
        sims = []
        for executor in (
            SequentialExecutor(),
            make_executor(workers, engine=engine),
        ):
            model, registry, config = self._registry_world()
            with executor:
                sim = FederatedSimulation(
                    model, registry, config, np.random.default_rng(3),
                    executor=executor,
                )
                sim.run(4)
                sims.append(sim.global_model.get_flat())
        np.testing.assert_array_equal(sims[0], sims[1])


class TestTransportAccounting:
    def test_sequential_moves_no_bytes(self):
        sim = build_defended_sim(SequentialExecutor(), store=InProcessModelStore())
        records = sim.run(4)
        assert all(r.transport_bytes == 0 for r in records)

    def test_shared_memory_ships_one_model_per_round(self):
        """O(1) new-model transport: each round copies exactly the staged
        candidate into the arena — the global model deduplicates against
        the latest committed history entry."""
        store = SharedMemoryModelStore()
        with store, make_executor(2) as executor:
            sim = build_defended_sim(executor, store=store)
            model_bytes = sim.global_model.get_flat().nbytes
            records = sim.run(6)
        assert [r.transport_bytes for r in records] == [model_bytes] * 6

    def test_shared_memory_transport_independent_of_history_and_fanout(self):
        """The acceptance criterion: shm bytes/round do not grow with the
        look-back window or the validator count (pipe bytes do)."""
        per_round = {}
        for label, lookback, validators in (
            ("small", 4, 2),
            ("large", 6, 5),
        ):
            store = SharedMemoryModelStore()
            with store, make_executor(2) as executor:
                sim = build_defended_sim(
                    executor, store=store, lookback=lookback,
                    num_validators=validators,
                )
                records = sim.run(8)
            per_round[label] = [r.transport_bytes for r in records]
        assert per_round["small"] == per_round["large"]

    def test_pipe_transport_grows_with_history(self):
        with make_executor(2) as executor:
            sim = build_defended_sim(executor, store=InProcessModelStore())
            model_bytes = sim.global_model.get_flat().nbytes
            records = sim.run(6)
        pipe_bytes = [r.transport_bytes for r in records]
        # Per round: the global model per remote client plus, once voting
        # starts, (candidate + history) per remote validator.
        assert all(b >= model_bytes for b in pipe_bytes)
        assert pipe_bytes[-1] > pipe_bytes[0]  # history growth shows up

    def test_pipes_ship_more_than_shared_memory(self):
        totals = {}
        for label, store_cls in (
            ("pipes", InProcessModelStore),
            ("shm", SharedMemoryModelStore),
        ):
            store = store_cls()
            with store, make_executor(2) as executor:
                sim = build_defended_sim(executor, store=store)
                records = sim.run(6)
            totals[label] = sum(r.transport_bytes for r in records)
        assert totals["shm"] < totals["pipes"]


class TestSharedProfileTable:
    def test_table_profiles_stay_within_retained_history(self):
        """Satellite regression: profiles of rejected candidates and of
        evicted history versions never accumulate in the shared table."""
        store = SharedMemoryModelStore()
        with store, make_executor(2) as executor:
            sim = build_defended_sim(executor, store=store)
            sim.run(8)
            defense = sim.defense
            retained = set(defense.history.versions())
            table_versions = {key[1] for key in defense.profile_table._profiles}
            assert table_versions <= retained
            assert defense.profile_table.staged_count == 0

    def test_sequential_run_keeps_table_empty(self):
        """The sequential path reuses validators' own caches; the shared
        table only collects worker-computed profiles."""
        sim = build_defended_sim(SequentialExecutor(), store=InProcessModelStore())
        sim.run(8)
        assert len(sim.defense.profile_table) == 0


class TestWorkerTaskProfileFlow:
    """Exercise the worker-side task function in-process: hints suppress
    recomputation, computed profiles flow back, caches evict retired
    versions."""

    def _worker_world(self):
        from repro.fl import parallel as parallel_mod

        model, clients, server_data, _ = make_world()
        validator = MisclassificationValidator(server_data, min_history=4)
        parallel_mod._init_worker({}, {0: validator}, model.clone(), None)
        return parallel_mod, model, validator

    @staticmethod
    def _blob(model):
        """A pipe blob in the wire format: a codec-encoded segment."""
        from repro.fl.compression import IdentityCodec

        return IdentityCodec().encode(model.get_flat()).to_bytes()

    def _refs(self, model, versions, rng):
        refs = []
        for version in versions:
            perturbed = model.clone()
            flat = perturbed.get_flat()
            perturbed.set_flat(flat + rng.normal(0.0, 1e-3, size=flat.shape))
            refs.append((version, self._blob(perturbed)))
        return refs

    def test_hints_suppress_recomputation_and_new_profiles_return(self, rng):
        from repro.core import validation as validation_mod

        parallel_mod, model, validator = self._worker_world()
        history = self._refs(model, range(6), rng)
        candidate = (None, self._blob(model))
        seed = np.random.SeedSequence(0)

        vote, new_profiles, candidate_profile = parallel_mod._validator_task(
            0, candidate, history, 0, seed, {}, None
        )
        assert vote in (0, 1)
        assert set(new_profiles) == set(range(6))
        assert candidate_profile is not None

        # Second vote over the same history, hints supplied: nothing new to
        # compute, and no forward passes beyond the fresh candidate's.
        profiled = []
        real = validation_mod.model_error_profile

        def counting(m, dataset, normalize="dataset"):
            profiled.append(m)
            return real(m, dataset, normalize=normalize)

        validator._profile_cache.clear()
        validation_mod.model_error_profile = counting
        try:
            _, second_new, _ = parallel_mod._validator_task(
                0, candidate, history, 1, seed, new_profiles, None
            )
        finally:
            validation_mod.model_error_profile = real
        assert second_new == {}
        assert len(profiled) == 1  # the candidate only

    def test_worker_caches_evict_retired_versions(self, rng):
        parallel_mod, model, validator = self._worker_world()
        candidate = (None, self._blob(model))
        seed = np.random.SeedSequence(0)
        parallel_mod._validator_task(
            0, candidate, self._refs(model, range(6), rng), 0, seed, {}, None
        )
        # The window slides forward by two versions.
        parallel_mod._validator_task(
            0, candidate, self._refs(model, range(2, 8), rng), 1, seed, {}, None
        )
        assert set(parallel_mod._W_MODELS) == set(range(2, 8))
        assert set(validator._profile_cache) <= set(range(2, 8))


class TestThreadEngine:
    """Thread-engine specifics beyond the equivalence matrix: zero
    transport, in-process store default, parent fallback, reuse guard."""

    def test_thread_runs_move_zero_bytes(self):
        with make_executor(2, engine="thread") as executor:
            sim = build_defended_sim(executor, store=InProcessModelStore())
            records = sim.run(6)
        assert all(r.transport_bytes == 0 for r in records)
        assert executor.transport_bytes == 0

    def test_make_engine_auto_store_resolves_to_inprocess_for_threads(self):
        with make_engine(2, engine="thread") as engine:
            assert isinstance(engine.executor, ThreadPoolRoundExecutor)
            assert isinstance(engine.store, InProcessModelStore)
        # An explicit store kind is still honored.
        with make_engine(2, engine="thread", store="shared") as engine:
            assert isinstance(engine.store, SharedMemoryModelStore)

    def test_parent_fallback_clients_preserve_equivalence(self):
        seq_flat, seq_records = run_and_snapshot(
            build_defended_sim(SequentialExecutor())
        )
        with make_executor(2, engine="thread") as executor:
            thr_flat, thr_records = run_and_snapshot(
                build_defended_sim(executor, home_client=1)
            )
        np.testing.assert_array_equal(seq_flat, thr_flat)
        assert seq_records == thr_records

    def test_executor_reuse_across_simulations_rejected(self):
        model, clients, _, config = make_world()
        with make_executor(2, engine="thread") as executor:
            FederatedSimulation(
                model.clone(), clients, config,
                np.random.default_rng(3), executor=executor,
            )
            with pytest.raises(RuntimeError, match="one executor per simulation"):
                FederatedSimulation(
                    model.clone(), clients, config,
                    np.random.default_rng(4), executor=executor,
                )


class _OneVoteValidator:
    """Minimal parallel-safe validator for in-process worker-task tests."""

    parallel_safe = True

    def vote(self, context, rng):
        return 1


class TestWarmAttachCaching:
    """Satellite regression: pool workers attach each arena segment exactly
    once per version — warm attachments are cached across tasks and rounds
    and dropped only on the release path (the eviction floor)."""

    def test_one_attach_per_version_across_rounds(self, monkeypatch):
        from repro.fl import model_store as model_store_mod
        from repro.fl import parallel as parallel_mod

        model, _, _, _ = make_world()
        store = SharedMemoryModelStore()
        with store:
            versions = [store.publish_new(model.get_flat()) for _ in range(7)]
            *history_versions, candidate_version = versions
            parallel_mod._init_worker(
                {}, {0: _OneVoteValidator(), 1: _OneVoteValidator()},
                model.clone(), store.worker_handle(),
            )

            attaches: list[str] = []
            real_shm = model_store_mod.shared_memory.SharedMemory

            def counting(*args, **kwargs):
                if not kwargs.get("create", False):
                    attaches.append(kwargs.get("name", args[0] if args else "?"))
                return real_shm(*args, **kwargs)

            monkeypatch.setattr(
                model_store_mod.shared_memory, "SharedMemory", counting
            )

            def round_task(vids, cand, hist, round_idx):
                return parallel_mod._validator_slice_task(
                    vids, (cand, None), [(v, None) for v in hist], round_idx,
                    [np.random.SeedSequence(round_idx * 100 + vid)
                     for vid in vids],
                    {}, min(hist),
                )

            # Round 0: one attach per distinct version, however many
            # validators share the slice.
            round_task([0, 1], candidate_version, history_versions, 0)
            assert len(attaches) == len(history_versions) + 1

            # Same round, second slice task (same worker): fully warm.
            round_task([0, 1], candidate_version, history_versions, 0)
            assert len(attaches) == len(history_versions) + 1

            # Next round: the accepted candidate joined the history and a
            # new candidate appeared — exactly one new attach.
            new_candidate = store.publish_new(model.get_flat())
            slid_history = history_versions[1:] + [candidate_version]
            round_task([0, 1], new_candidate, slid_history, 1)
            assert len(attaches) == len(history_versions) + 2

            # The eviction floor (release path) drops retired attachments;
            # re-reading a retired version would need a fresh attach.
            assert min(history_versions) not in parallel_mod._W_STORE._segments
            assert set(parallel_mod._W_STORE._segments) == set(
                slid_history + [new_candidate]
            )
            parallel_mod._W_STORE.close()


class TestStandaloneContextOnSharedStore:
    def test_unstaged_history_falls_back_to_blob_transport(self):
        """Regression: a context whose candidate/history never touched the
        executor's shared store (defense bound without a store) must still
        validate — unresolvable versions travel as blobs, not as dangling
        arena keys."""
        from repro.core.validation import ValidationContext

        model, clients, server_data, config = make_world()
        validator_pool = ValidatorPool.from_datasets(
            {c.client_id: c.dataset for c in clients}, min_history=4
        )
        history = [(v, model.clone()) for v in range(6)]
        context = ValidationContext(candidate=model.clone(), history=history)
        store = SharedMemoryModelStore()
        with store, make_executor(2) as executor:
            executor.bind(
                clients=clients, template=model.clone(), store=store,
                validator_pool=validator_pool,
            )
            votes = executor.run_validators(
                validator_pool, [0, 1], context, 0, RngStreams.from_seed(0)
            )
            assert set(votes) == {0, 1}
            assert store.versions() == []  # ephemeral candidate released
