"""Tests for the parallel round engine and its keyed RNG streams.

The headline guarantee: a :class:`ProcessPoolRoundExecutor` run commits
**bit-identical** global models and round records to a
:class:`SequentialExecutor` run under the same seed.  Everything here
defends that property.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baffle import BaffleConfig, BaffleDefense, ValidatorPool
from repro.core.validation import MisclassificationValidator
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.fl.client import HonestClient, LocalTrainingConfig
from repro.fl.config import FLConfig
from repro.fl.parallel import (
    ProcessPoolRoundExecutor,
    SequentialExecutor,
    make_executor,
)
from repro.fl.rng import RngStreams
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp


class StayAtHomeClient(HonestClient):
    """An honest client that must run in the parent process."""

    parallel_safe = False


def make_world(seed: int = 7, num_clients: int = 6, home_client: int | None = None):
    """A separable 3-class federated world with per-client validators."""
    rng = np.random.default_rng(seed)
    centers = np.array([[2.0, 0.0], [-2.0, 1.5], [0.0, -2.5]])
    labels = np.tile(np.arange(3), 120)
    x = centers[labels] + rng.normal(0.0, 0.4, size=(len(labels), 2))
    pool = Dataset(x, labels, 3)
    parts = iid_partition(len(pool), num_clients + 1, rng)
    shards = [pool.subset(p) for p in parts]
    clients = [
        (StayAtHomeClient if i == home_client else HonestClient)(i, shards[i])
        for i in range(num_clients)
    ]
    server_data = shards[num_clients]
    model = make_mlp(2, 3, rng, hidden=(8,))
    config = FLConfig(num_clients=num_clients, clients_per_round=3, local_epochs=1,
                      batch_size=16)
    return model, clients, server_data, config


def build_defended_sim(
    executor, seed: int = 7, home_client: int | None = None, prime: bool = True
):
    model, clients, server_data, config = make_world(seed, home_client=home_client)
    validator_pool = ValidatorPool.from_datasets(
        {c.client_id: c.dataset for c in clients}, min_history=4
    )
    defense = BaffleDefense(
        BaffleConfig(lookback=4, quorum=2, num_validators=3, mode="both"),
        validator_pool,
        MisclassificationValidator(server_data, min_history=4),
    )
    if prime:
        defense.prime(model)
    return FederatedSimulation(
        model.clone(), clients, config, np.random.default_rng(seed + 1),
        defense=defense, executor=executor,
    )


def run_and_snapshot(sim, rounds: int = 8):
    records = sim.run(rounds)
    return sim.global_model.get_flat(), [
        (
            r.round_idx,
            tuple(r.contributor_ids),
            r.accepted,
            r.decision.reject_votes,
            dict(r.decision.client_votes),
            r.decision.server_vote,
        )
        for r in records
    ]


class TestRngStreams:
    def test_keyed_streams_are_reproducible(self):
        a = RngStreams.from_seed(3)
        b = RngStreams.from_seed(3)
        assert a.client_rng(5, 2).random() == b.client_rng(5, 2).random()
        assert a.validator_rng(5, 2).random() == b.validator_rng(5, 2).random()

    def test_domains_rounds_and_entities_are_independent(self):
        streams = RngStreams.from_seed(3)
        draws = {
            streams.client_rng(5, 2).random(),
            streams.validator_rng(5, 2).random(),
            streams.client_rng(6, 2).random(),
            streams.client_rng(5, 3).random(),
            streams.server_rng(5).random(),
        }
        assert len(draws) == 5

    def test_from_rng_consumes_no_draws(self):
        rng = np.random.default_rng(11)
        RngStreams.from_rng(rng)
        assert rng.random() == np.random.default_rng(11).random()

    def test_from_rng_is_deterministic_per_generator(self):
        a = RngStreams.from_rng(np.random.default_rng(11))
        b = RngStreams.from_rng(np.random.default_rng(11))
        assert a.client_rng(0, 0).random() == b.client_rng(0, 0).random()

    def test_negative_keys_rejected(self):
        with pytest.raises(ValueError):
            RngStreams.from_seed(0).client_seq(-1, 0)


class TestSequentialOrderIndependence:
    def test_client_updates_do_not_depend_on_execution_order(self):
        model, clients, _, config = make_world()
        local_cfg = LocalTrainingConfig(epochs=1, batch_size=16, lr=0.1)
        streams = RngStreams.from_seed(0)
        executor = SequentialExecutor()
        forward = executor.run_clients(clients, [0, 1, 2], model, local_cfg, 0, streams)
        backward = executor.run_clients(clients, [2, 1, 0], model, local_cfg, 0, streams)
        for update_f, update_b in zip(forward, reversed(backward)):
            np.testing.assert_array_equal(update_f, update_b)


class TestMakeExecutor:
    def test_zero_and_one_worker_fall_back_to_sequential(self):
        assert isinstance(make_executor(0), SequentialExecutor)
        assert isinstance(make_executor(1), SequentialExecutor)

    def test_multiple_workers_build_a_process_pool(self):
        executor = make_executor(2)
        assert isinstance(executor, ProcessPoolRoundExecutor)
        executor.close()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            make_executor(-1)

    def test_pool_requires_two_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolRoundExecutor(1)


class TestSequentialParallelEquivalence:
    def test_defended_runs_commit_bit_identical_models_and_records(self):
        seq_flat, seq_records = run_and_snapshot(
            build_defended_sim(SequentialExecutor())
        )
        with make_executor(2) as executor:
            par_flat, par_records = run_and_snapshot(build_defended_sim(executor))
        np.testing.assert_array_equal(seq_flat, par_flat)
        assert seq_records == par_records

    def test_parent_fallback_clients_preserve_equivalence(self):
        """Clients with ``parallel_safe = False`` run in the parent but
        must not perturb the committed trajectory."""
        seq_flat, seq_records = run_and_snapshot(
            build_defended_sim(SequentialExecutor())
        )
        with make_executor(2) as executor:
            par_flat, par_records = run_and_snapshot(
                build_defended_sim(executor, home_client=1)
            )
        np.testing.assert_array_equal(seq_flat, par_flat)
        assert seq_records == par_records

    def test_empty_history_round_abstains_in_both_engines(self):
        """Regression: an unprimed defense reviews round 0 with an empty
        history; worker-side validation must abstain like the sequential
        path instead of crashing on the empty history."""
        seq_flat, seq_records = run_and_snapshot(
            build_defended_sim(SequentialExecutor(), prime=False), rounds=3
        )
        with make_executor(2) as executor:
            par_flat, par_records = run_and_snapshot(
                build_defended_sim(executor, prime=False), rounds=3
            )
        np.testing.assert_array_equal(seq_flat, par_flat)
        assert seq_records == par_records

    def test_undefended_run_equivalence(self):
        model, clients, _, config = make_world()
        sims = []
        for executor in (SequentialExecutor(), make_executor(2)):
            with executor:
                sim = FederatedSimulation(
                    model.clone(), clients, config,
                    np.random.default_rng(3), executor=executor,
                )
                sim.run(4)
                sims.append(sim.global_model.get_flat())
        np.testing.assert_array_equal(sims[0], sims[1])


class TestExecutorLifecycle:
    def test_bind_after_pool_start_rejected(self):
        model, clients, _, config = make_world()
        with make_executor(2) as executor:
            sim = FederatedSimulation(
                model.clone(), clients, config,
                np.random.default_rng(3), executor=executor,
            )
            sim.run_round()
            with pytest.raises(RuntimeError):
                executor.bind(clients=clients)

    def test_executor_reuse_across_simulations_rejected(self):
        """One executor per simulation: a second bind of the same
        population must fail loudly, not silently retrain the wrong world."""
        model, clients, _, config = make_world()
        with make_executor(2) as executor:
            FederatedSimulation(
                model.clone(), clients, config,
                np.random.default_rng(3), executor=executor,
            )
            with pytest.raises(RuntimeError, match="one executor per simulation"):
                FederatedSimulation(
                    model.clone(), clients, config,
                    np.random.default_rng(4), executor=executor,
                )

    def test_pool_without_template_rejected(self):
        executor = ProcessPoolRoundExecutor(2)
        model, clients, _, config = make_world()
        streams = RngStreams.from_seed(0)
        with pytest.raises(RuntimeError):
            executor.run_clients(
                clients, [0], model, LocalTrainingConfig(epochs=1), 0, streams
            )
        executor.close()

    def test_close_is_idempotent(self):
        executor = make_executor(2)
        executor.close()
        executor.close()
