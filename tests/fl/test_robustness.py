"""Robustness features: gradient clipping and non-finite-update handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.fl.client import (
    Client,
    HonestClient,
    LocalTrainingConfig,
    clip_gradients,
    local_train,
)
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.models import make_mlp


class TestGradientClipping:
    def test_clip_scales_to_max_norm(self, tiny_mlp, tiny_dataset):
        loss = SoftmaxCrossEntropy()
        tiny_mlp.zero_grad()
        loss.forward(tiny_mlp.forward(tiny_dataset.x, train=True), tiny_dataset.y)
        tiny_mlp.backward(loss.backward())
        pre_norm = float(np.linalg.norm(tiny_mlp.get_grad_flat()))
        returned = clip_gradients(tiny_mlp, max_norm=pre_norm / 10)
        assert returned == pytest.approx(pre_norm)
        post = float(np.linalg.norm(tiny_mlp.get_grad_flat()))
        assert post == pytest.approx(pre_norm / 10)

    def test_no_clip_below_threshold(self, tiny_mlp, tiny_dataset):
        loss = SoftmaxCrossEntropy()
        tiny_mlp.zero_grad()
        loss.forward(tiny_mlp.forward(tiny_dataset.x, train=True), tiny_dataset.y)
        tiny_mlp.backward(loss.backward())
        before = tiny_mlp.get_grad_flat()
        clip_gradients(tiny_mlp, max_norm=1e9)
        np.testing.assert_array_equal(tiny_mlp.get_grad_flat(), before)

    def test_invalid_max_norm(self, tiny_mlp):
        with pytest.raises(ValueError):
            clip_gradients(tiny_mlp, max_norm=0.0)

    def test_local_train_with_clipping_converges(self, tiny_dataset, rng):
        model = make_mlp(2, 3, rng, hidden=(8,))
        config = LocalTrainingConfig(epochs=20, lr=0.1, max_grad_norm=1.0)
        local_train(model, tiny_dataset, config, rng)
        acc = (model.predict(tiny_dataset.x) == tiny_dataset.y).mean()
        assert acc > 0.9

    def test_config_validates_max_grad_norm(self):
        with pytest.raises(ValueError):
            LocalTrainingConfig(max_grad_norm=0.0)


class NaNClient(Client):
    """A crash-faulty client: submits a NaN-poisoned update."""

    def produce_update(self, global_model, config, round_idx, rng):
        update = np.zeros(global_model.num_parameters)
        update[0] = np.nan
        return update


class TestNonFiniteUpdates:
    @pytest.fixture
    def world(self, rng):
        labels = np.tile(np.arange(3), 40)
        centers = np.array([[2.0, 0.0], [-2.0, 1.5], [0.0, -2.5]])
        x = centers[labels] + rng.normal(0.0, 0.4, size=(120, 2))
        pool = Dataset(x, labels, 3)
        parts = iid_partition(len(pool), 4, rng)
        clients = [NaNClient(0, pool.subset(parts[0]))] + [
            HonestClient(i, pool.subset(parts[i])) for i in range(1, 4)
        ]
        model = make_mlp(2, 3, rng, hidden=(8,))
        config = FLConfig(num_clients=4, clients_per_round=4, local_epochs=1)
        return model, clients, config

    def test_nan_round_rejected_and_model_preserved(self, world, rng):
        model, clients, config = world
        sim = FederatedSimulation(model, clients, config, rng)
        before = sim.global_model.get_flat().copy()
        record = sim.run_round()
        assert not record.accepted
        np.testing.assert_array_equal(sim.global_model.get_flat(), before)
        assert np.isfinite(sim.global_model.get_flat()).all()

    def test_training_continues_after_nan_round(self, world, rng):
        model, clients, config = world
        sim = FederatedSimulation(model, clients, config, rng)
        records = sim.run(5)
        # every round contains the NaN client (4 of 4 selected): all rejected
        assert not any(r.accepted for r in records)
        assert np.isfinite(sim.global_model.get_flat()).all()
