"""Unit tests for repro.fl.selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.selection import ScheduledSelector, UniformSelector


class TestUniformSelector:
    def test_selects_requested_count(self, rng):
        sel = UniformSelector(30, 10)
        chosen = sel.select(0, rng)
        assert len(chosen) == 10
        assert len(set(chosen)) == 10

    def test_ids_in_range(self, rng):
        sel = UniformSelector(15, 5)
        for round_idx in range(20):
            assert all(0 <= c < 15 for c in sel.select(round_idx, rng))

    def test_all_clients_eventually_selected(self, rng):
        sel = UniformSelector(10, 3)
        seen = set()
        for round_idx in range(200):
            seen.update(sel.select(round_idx, rng))
        assert seen == set(range(10))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            UniformSelector(5, 6)
        with pytest.raises(ValueError):
            UniformSelector(5, 0)


class TestScheduledSelector:
    def test_forced_client_present(self, rng):
        sel = ScheduledSelector(20, 5, {3: [7]})
        assert 7 in sel.select(3, rng)

    def test_unforced_round_is_uniform(self, rng):
        sel = ScheduledSelector(20, 5, {3: [7]})
        chosen = sel.select(0, rng)
        assert len(chosen) == 5

    def test_forced_clients_not_duplicated(self, rng):
        sel = ScheduledSelector(20, 5, {0: [1, 2]})
        chosen = sel.select(0, rng)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5
        assert 1 in chosen and 2 in chosen

    def test_too_many_forced_rejected(self):
        with pytest.raises(ValueError):
            ScheduledSelector(20, 2, {0: [1, 2, 3]})

    def test_out_of_range_forced_rejected(self):
        with pytest.raises(ValueError):
            ScheduledSelector(20, 5, {0: [25]})

    def test_duplicate_forced_rejected(self):
        with pytest.raises(ValueError):
            ScheduledSelector(20, 5, {0: [1, 1]})

    @pytest.mark.parametrize("forced", [[7], [0], [19], [3, 11], [0, 1, 19]])
    def test_rank_mapping_matches_materialized_pool(self, forced):
        """The arithmetic rank->id fill must reproduce, draw for draw, what
        the old materialized non-forced pool produced — same ids AND same
        stream consumption (a virtual registry must not change selection)."""
        num_clients, per_round = 20, 5
        sel = ScheduledSelector(num_clients, per_round, {0: forced})
        for seed in range(10):
            chosen = sel.select(0, np.random.default_rng(seed))
            # Reference: the pre-registry list-based implementation.
            ref_rng = np.random.default_rng(seed)
            pool = [c for c in range(num_clients) if c not in forced]
            fill = per_round - len(forced)
            extra = ref_rng.choice(len(pool), size=fill, replace=False)
            reference = list(forced) + [pool[i] for i in extra]
            assert chosen == reference
            # Stream consumption identical too: the next draw after a
            # select() matches the next draw after the reference fill.
            follow = np.random.default_rng(seed)
            sel.select(0, follow)
            assert follow.random() == ref_rng.random()
