"""Tests for the pipelined round loop: optimistic commit, rollback, replay.

The headline guarantee extends PR 2's: a pipelined run — any
``pipeline_depth``, any store, any worker count, even runs containing
rollbacks — commits **bit-identical** global models and defense decisions
to the synchronous sequential engine.  Rollback edge cases get dedicated
coverage: a rejection arriving after later rounds already built on the
optimistic commit, history eviction while in-flight validators still hold
version references, and back-to-back rollbacks exhausting the pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baffle import (
    BaffleConfig,
    BaffleDefense,
    ForcedRejectDefense,
    ValidatorPool,
)
from repro.core.validation import MisclassificationValidator
from repro.fl.model_store import InProcessModelStore, SharedMemoryModelStore
from repro.fl.parallel import SequentialExecutor, make_executor
from repro.fl.simulation import DefenseDecision, FederatedSimulation
from tests.fl.test_parallel import build_defended_sim, make_world, shm_leftovers

ROUNDS = 8


def build_forced_sim(
    executor,
    store=None,
    reject_rounds=(),
    seed: int = 8,
    lookback: int = 4,
):
    """A defended world whose quorum outcome is scripted per round."""
    model, clients, server_data, config = make_world(seed)
    validator_pool = ValidatorPool.from_datasets(
        {c.client_id: c.dataset for c in clients}, min_history=4
    )
    defense = ForcedRejectDefense(
        BaffleConfig(lookback=lookback, quorum=2, num_validators=3, mode="both"),
        validator_pool,
        MisclassificationValidator(server_data, min_history=4),
        reject_rounds=reject_rounds,
    )
    defense.prime(model)
    return FederatedSimulation(
        model.clone(), clients, config, np.random.default_rng(seed + 1),
        defense=defense, executor=executor, model_store=store,
    )


def snapshot(records):
    """Decision-relevant record fields (telemetry asserted separately)."""
    return [
        (
            r.round_idx,
            tuple(r.contributor_ids),
            r.accepted,
            r.decision.reject_votes,
            dict(r.decision.client_votes),
            r.decision.server_vote,
        )
        for r in records
    ]


class TestPipelinedDepthEquivalence:
    """Any depth — not just the degenerate 0 — commits bit-identically:
    replay after rollback restores exactly the synchronous trajectory."""

    @pytest.mark.parametrize("depth", [1, 2, 3])
    @pytest.mark.parametrize("workers", [0, 2])
    def test_depth_matches_sequential(self, depth, workers):
        baseline = build_defended_sim(SequentialExecutor())
        baseline_records = baseline.run(ROUNDS)
        store = SharedMemoryModelStore() if workers else InProcessModelStore()
        with store, make_executor(
            workers, store=store, mode="pipelined", pipeline_depth=depth
        ) as executor:
            sim = build_defended_sim(executor, store=store)
            records = sim.run(ROUNDS)
            np.testing.assert_array_equal(
                baseline.global_model.get_flat(), sim.global_model.get_flat()
            )
        assert snapshot(baseline_records) == snapshot(records)

    def test_two_bursts_continue_where_the_first_drained(self):
        baseline = build_defended_sim(SequentialExecutor())
        base_records = baseline.run(ROUNDS)
        with make_executor(0, mode="pipelined", pipeline_depth=2) as executor:
            sim = build_defended_sim(executor)
            records = sim.run(ROUNDS // 2) + sim.run(ROUNDS - ROUNDS // 2)
            np.testing.assert_array_equal(
                baseline.global_model.get_flat(), sim.global_model.get_flat()
            )
        assert snapshot(base_records) == snapshot(records)

    def test_run_round_steps_the_pipeline(self):
        baseline = build_defended_sim(SequentialExecutor())
        base_records = [baseline.run_round() for _ in range(4)]
        with make_executor(0, mode="pipelined", pipeline_depth=2) as executor:
            sim = build_defended_sim(executor)
            records = [sim.run_round() for _ in range(4)]
        assert snapshot(base_records) == snapshot(records)


class TestForcedRollback:
    """A late rejection rolls the speculative suffix back and replays it."""

    def _sync_snapshot(self, reject_rounds, lookback=4):
        sim = build_forced_sim(
            SequentialExecutor(), reject_rounds=reject_rounds, lookback=lookback
        )
        records = sim.run(ROUNDS)
        return sim.global_model.get_flat(), snapshot(records)

    def test_reject_after_commit_was_built_upon(self):
        """Rounds 4 and 5 speculate on round 3's optimistic commit; its
        forced rejection must unwind and replay them — landing on the
        synchronous trajectory exactly."""
        sync_flat, sync_records = self._sync_snapshot(reject_rounds=(3,))
        store = SharedMemoryModelStore()
        with store, make_executor(
            2, store=store, mode="pipelined", pipeline_depth=2
        ) as executor:
            sim = build_forced_sim(executor, store=store, reject_rounds=(3,))
            records = sim.run(ROUNDS)
            np.testing.assert_array_equal(sync_flat, sim.global_model.get_flat())
            assert snapshot(records) == sync_records
            replayed = {r.round_idx: r.rollback_count for r in records}
            assert replayed[3] == 0  # the rejected round itself is final
            assert replayed[4] == 1 and replayed[5] == 1  # its speculation
            assert not sim.defense.history.provisional_versions()
        assert shm_leftovers(store) == []

    def test_reject_after_commit_with_thread_engine(self):
        """The zero-IPC thread engine unwinds speculation identically:
        abandoned vote futures just finish and drop their results, and the
        replayed suffix lands on the synchronous trajectory."""
        sync_flat, sync_records = self._sync_snapshot(reject_rounds=(3,))
        store = InProcessModelStore()
        with make_executor(
            2, store=store, mode="pipelined", pipeline_depth=2, engine="thread"
        ) as executor:
            sim = build_forced_sim(executor, store=store, reject_rounds=(3,))
            records = sim.run(ROUNDS)
            np.testing.assert_array_equal(sync_flat, sim.global_model.get_flat())
            assert snapshot(records) == sync_records
            replayed = {r.round_idx: r.rollback_count for r in records}
            assert replayed[4] == 1 and replayed[5] == 1
            assert not sim.defense.history.provisional_versions()

    def test_back_to_back_rollbacks_with_thread_engine(self):
        sync_flat, sync_records = self._sync_snapshot(reject_rounds=(3, 4))
        with make_executor(
            2, mode="pipelined", pipeline_depth=2, engine="thread"
        ) as executor:
            sim = build_forced_sim(executor, reject_rounds=(3, 4))
            records = sim.run(ROUNDS)
            np.testing.assert_array_equal(sync_flat, sim.global_model.get_flat())
        assert snapshot(records) == sync_records

    def test_back_to_back_rollbacks_exhaust_pipeline(self):
        """Consecutive rejections: round 4's replay is itself rejected,
        so round 5 is rolled back twice and round 6 once more — every
        speculative slot of the depth-2 pipeline unwinds at least once."""
        sync_flat, sync_records = self._sync_snapshot(reject_rounds=(3, 4))
        with make_executor(
            0, mode="pipelined", pipeline_depth=2
        ) as executor:
            sim = build_forced_sim(executor, reject_rounds=(3, 4))
            records = sim.run(ROUNDS)
            np.testing.assert_array_equal(sync_flat, sim.global_model.get_flat())
        assert snapshot(records) == sync_records
        replayed = {r.round_idx: r.rollback_count for r in records}
        assert replayed[4] == 1  # rolled back by round 3's rejection
        assert replayed[5] == 2  # by round 3's and round 4's
        assert replayed[6] == 1  # by round 4's

    def test_no_leaked_store_versions_after_rollback(self):
        """The acceptance-criterion refcount audit: after a run containing
        rollbacks, the store holds exactly the retained history versions —
        every withdrawn version, straggler reference, staged profile and
        parked eviction has been released."""
        store = SharedMemoryModelStore()
        with store, make_executor(
            2, store=store, mode="pipelined", pipeline_depth=2
        ) as executor:
            sim = build_forced_sim(executor, store=store, reject_rounds=(3, 5))
            records = sim.run(ROUNDS)
            assert sum(r.rollback_count for r in records) > 0
            executor.close()  # releases the executor's held global reference
            history = sim.defense.history
            assert store.versions() == history.versions()
            assert all(store.refcount(v) == 1 for v in history.versions())
            assert sim.defense.profile_table.staged_count == 0
            table_versions = {
                key[1] for key in sim.defense.profile_table._profiles
            }
            assert table_versions <= set(history.versions())
        assert shm_leftovers(store) == []

    def test_eviction_during_open_pipeline_with_inflight_refs(self):
        """The minimum-size look-back window (5 retained models) with a
        depth-3 pipeline: optimistic commits displace history entries
        while validator futures still reference them.  Deferred eviction
        plus per-task store references must keep every in-flight version
        resolvable — the run completes, matches sync, and leaks nothing."""
        sync_flat, sync_records = self._sync_snapshot(
            reject_rounds=(4,), lookback=4
        )
        store = SharedMemoryModelStore()
        with store, make_executor(
            2, store=store, mode="pipelined", pipeline_depth=3
        ) as executor:
            sim = build_forced_sim(
                executor, store=store, reject_rounds=(4,), lookback=4
            )
            records = sim.run(ROUNDS)
            np.testing.assert_array_equal(sync_flat, sim.global_model.get_flat())
            assert snapshot(records) == sync_records
            executor.close()
            assert store.versions() == sim.defense.history.versions()
        assert shm_leftovers(store) == []

    def test_rollback_invalidates_validator_profile_caches(self):
        """rollback_review drops the withdrawn versions from every
        in-parent validator's profile cache (and the shared table)."""
        from repro.fl.rng import RngStreams

        model, clients, server_data, _ = make_world()
        validator_pool = ValidatorPool.from_datasets(
            {c.client_id: c.dataset for c in clients}, min_history=4
        )
        defense = BaffleDefense(
            BaffleConfig(lookback=4, quorum=2, num_validators=3, mode="both"),
            validator_pool,
            MisclassificationValidator(server_data, min_history=4),
        )
        defense.prime(model)
        executor = SequentialExecutor()
        defense.bind_runtime(executor=executor, streams=RngStreams.from_seed(0))
        pending = defense.review_async(
            model.clone(), 0, np.random.default_rng(0)
        )
        version = defense.commit_optimistic(pending)
        # Pretend validators profiled the provisional version meanwhile.
        defense.server_validator._profile_cache[version] = "stale"
        victim = validator_pool.get(0)
        victim._profile_cache[version] = "stale"
        defense.profile_table.put(1, version, "stale")
        assert defense.rollback_review(pending) == [version]
        assert version not in defense.server_validator._profile_cache
        assert version not in victim._profile_cache
        assert defense.profile_table.get(1, version) is None


class TestPipelinedTelemetry:
    def test_sync_records_report_zero_lag(self):
        sim = build_defended_sim(SequentialExecutor())
        for record in sim.run(4):
            assert record.accepted_at_round == record.round_idx
            assert record.validation_lag == 0
            assert record.rollback_count == 0

    def test_steady_state_lag_equals_depth(self):
        with make_executor(0, mode="pipelined", pipeline_depth=2) as executor:
            sim = build_defended_sim(executor)
            records = sim.run(ROUNDS)
        # The defended world reviews from round 0; mid-run rounds resolve
        # exactly pipeline_depth rounds after aggregation, the tail drains.
        lags = [r.validation_lag for r in records]
        assert lags[:-2] == [2] * (ROUNDS - 2)
        assert lags[-2:] == [1, 0]
        for record in records:
            assert record.accepted_at_round == record.round_idx + record.validation_lag

    def test_execution_report_renders_lag_and_replays(self):
        from repro.experiments.reporting import format_execution_report

        with make_executor(0, mode="pipelined", pipeline_depth=2) as executor:
            sim = build_forced_sim(executor, reject_rounds=(3,))
            records = sim.run(ROUNDS)
        report = format_execution_report(records)
        assert "validation lag" in report
        assert "rollback replays" in report
        assert format_execution_report([]) == "execution report: no rounds"


class _ScriptedDefense:
    """A defense without the async protocol (resolves at round boundary)."""

    def __init__(self, reject_rounds=()):
        self.reject_rounds = set(reject_rounds)
        self.outcomes = []

    def review(self, candidate, round_idx, rng):
        return DefenseDecision(accepted=round_idx not in self.reject_rounds)

    def record_outcome(self, candidate, accepted):
        self.outcomes.append(accepted)


class TestPipelinedWithoutAsyncDefense:
    def test_generic_defense_degrades_to_sync_semantics(self):
        model, clients, _, config = make_world()
        flats = []
        for executor in (
            SequentialExecutor(),
            make_executor(0, mode="pipelined", pipeline_depth=2),
        ):
            with executor:
                sim = FederatedSimulation(
                    model.clone(), clients, config,
                    np.random.default_rng(3),
                    defense=_ScriptedDefense(reject_rounds=(1, 2)),
                    executor=executor,
                )
                records = sim.run(5)
                flats.append(sim.global_model.get_flat())
        np.testing.assert_array_equal(flats[0], flats[1])
        assert [r.accepted for r in records] == [True, False, False, True, True]

    def test_undefended_pipelined_matches_sequential(self):
        model, clients, _, config = make_world()
        flats = []
        for executor in (
            SequentialExecutor(),
            make_executor(0, mode="pipelined", pipeline_depth=3),
        ):
            with executor:
                sim = FederatedSimulation(
                    model.clone(), clients, config,
                    np.random.default_rng(3), executor=executor,
                )
                sim.run(4)
                flats.append(sim.global_model.get_flat())
        np.testing.assert_array_equal(flats[0], flats[1])


class TestPendingVotesLifecycle:
    """Deferred release: abandoned in-flight votes must not unlink segments
    under straggler tasks, and must release their references eventually."""

    def _submitted_pending(self, store, executor):
        from repro.core.validation import ValidationContext
        from repro.fl.rng import RngStreams

        model, clients, server_data, config = make_world()
        validator_pool = ValidatorPool.from_datasets(
            {c.client_id: c.dataset for c in clients}, min_history=4
        )
        executor.bind(
            clients=clients, template=model.clone(),
            validator_pool=validator_pool,
        )
        versions = [store.publish_new(model.get_flat()) for _ in range(6)]
        history = [(v, model.clone()) for v in versions]
        candidate_version = store.publish_new(model.get_flat())
        context = ValidationContext(
            candidate=model.clone(), history=history,
            candidate_version=candidate_version,
        )
        pending = executor.submit_validators(
            validator_pool, [0, 1], context, 0, RngStreams.from_seed(0)
        )
        return pending, versions + [candidate_version]

    def test_collect_releases_task_references(self):
        store = SharedMemoryModelStore()
        with store, make_executor(2, store=store) as executor:
            pending, versions = self._submitted_pending(store, executor)
            assert all(store.refcount(v) == 2 for v in versions)
            votes = pending.collect()
            assert set(votes) == {0, 1}
            assert votes == pending.collect()  # idempotent
            assert all(store.refcount(v) == 1 for v in versions)

    def test_abandoned_references_release_by_close(self):
        store = SharedMemoryModelStore()
        with store, make_executor(2, store=store) as executor:
            pending, versions = self._submitted_pending(store, executor)
            pending.abandon()
            with pytest.raises(RuntimeError, match="abandoned"):
                pending.collect()
            executor.close()  # waits out stragglers, drains deferred list
            assert all(store.refcount(v) == 1 for v in versions)
            for version in versions:
                store.release(version)
            assert store.versions() == []
        assert shm_leftovers(store) == []

    def test_rolled_back_candidate_stays_readable_for_stragglers(self):
        """Releasing the server's references to a withdrawn version while
        its votes are in flight must not break the straggler tasks."""
        store = SharedMemoryModelStore()
        with store, make_executor(2, store=store) as executor:
            pending, versions = self._submitted_pending(store, executor)
            for version in versions:  # the "history rollback": server drops
                store.release(version)
            assert all(v in store for v in versions)  # tasks hold them
            votes = pending.collect()
            assert set(votes) == {0, 1}
            assert store.versions() == []
        assert shm_leftovers(store) == []
