"""Unit tests for trimmed mean, median, norm clipping, RFA, FoolsGold."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.foolsgold import FoolsGoldAggregator
from repro.baselines.norm_clip import NormClippingAggregator
from repro.baselines.rfa import GeometricMedianAggregator, geometric_median
from repro.baselines.trimmed_mean import (
    CoordinateMedianAggregator,
    TrimmedMeanAggregator,
)


class TestTrimmedMean:
    def test_discards_extremes(self, rng):
        updates = [np.array([v]) for v in (1.0, 2.0, 3.0, 4.0, 100.0)]
        result = TrimmedMeanAggregator(trim=1).aggregate(updates, rng)
        np.testing.assert_allclose(result, [3.0])

    def test_zero_trim_is_mean(self, rng):
        updates = [np.array([1.0]), np.array([3.0])]
        np.testing.assert_allclose(
            TrimmedMeanAggregator(trim=0).aggregate(updates, rng), [2.0]
        )

    def test_overtrim_rejected(self, rng):
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(trim=2).aggregate([np.zeros(1)] * 4, rng)

    def test_negative_trim_rejected(self):
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(trim=-1)

    def test_robust_to_single_boosted_update(self, rng):
        honest = [rng.normal(0, 0.1, size=6) for _ in range(9)]
        boosted = np.full(6, 1000.0)
        result = TrimmedMeanAggregator(trim=1).aggregate(honest + [boosted], rng)
        assert np.abs(result).max() < 1.0


class TestCoordinateMedian:
    def test_median_per_coordinate(self, rng):
        updates = [np.array([1.0, 10.0]), np.array([2.0, 20.0]), np.array([9.0, 0.0])]
        result = CoordinateMedianAggregator().aggregate(updates, rng)
        np.testing.assert_allclose(result, [2.0, 10.0])

    def test_robust_to_minority_outliers(self, rng):
        honest = [rng.normal(0, 0.1, size=4) for _ in range(7)]
        attacks = [np.full(4, 500.0)] * 3
        result = CoordinateMedianAggregator().aggregate(honest + attacks, rng)
        assert np.abs(result).max() < 1.0


class TestNormClipping:
    def test_large_update_clipped(self, rng):
        updates = [np.array([0.1, 0.0]), np.array([30.0, 40.0])]
        result = NormClippingAggregator(max_norm=5.0).aggregate(updates, rng)
        clipped_second = np.array([3.0, 4.0])
        np.testing.assert_allclose(result, (updates[0] + clipped_second) / 2)

    def test_small_updates_untouched(self, rng):
        updates = [np.array([0.1, 0.2]), np.array([0.3, 0.1])]
        result = NormClippingAggregator(max_norm=5.0).aggregate(updates, rng)
        np.testing.assert_allclose(result, np.mean(updates, axis=0))

    def test_blunts_model_replacement_boost(self, rng):
        honest = [rng.normal(0, 0.1, size=8) for _ in range(9)]
        boosted = rng.normal(0, 0.1, size=8) * 100
        clipped = NormClippingAggregator(max_norm=1.0).aggregate(
            honest + [boosted], rng
        )
        unclipped = np.mean(honest + [boosted], axis=0)
        assert np.linalg.norm(clipped) < np.linalg.norm(unclipped)

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError):
            NormClippingAggregator(max_norm=0.0)


class TestGeometricMedian:
    def test_median_of_symmetric_points_is_center(self):
        points = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        np.testing.assert_allclose(geometric_median(points), [0.0, 0.0], atol=1e-6)

    def test_robust_to_far_outlier(self, rng):
        points = np.vstack([rng.normal(0, 0.1, size=(9, 3)), np.full((1, 3), 1000.0)])
        median = geometric_median(points)
        assert np.abs(median).max() < 1.0

    def test_single_point(self):
        np.testing.assert_allclose(
            geometric_median(np.array([[2.0, 3.0]])), [2.0, 3.0]
        )

    def test_invalid_input_rejected(self):
        with pytest.raises(ValueError):
            geometric_median(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            geometric_median(np.zeros(3))

    def test_aggregator_wraps_median(self, rng):
        updates = [rng.normal(size=4) for _ in range(7)]
        agg_result = GeometricMedianAggregator().aggregate(updates, rng)
        np.testing.assert_allclose(
            agg_result, geometric_median(np.stack(updates)), atol=1e-9
        )


class TestFoolsGold:
    def test_single_update_passes_through(self, rng):
        agg = FoolsGoldAggregator()
        update = rng.normal(size=5)
        result = agg.aggregate([update], rng)
        np.testing.assert_allclose(result, update)

    def test_sybil_pair_downweighted(self, rng):
        """Two identical-direction clients lose weight across rounds."""
        agg = FoolsGoldAggregator()
        sybil_dir = rng.normal(size=10)
        honest = [rng.normal(size=10) for _ in range(3)]
        for _ in range(3):
            updates = [sybil_dir.copy(), sybil_dir.copy()] + [
                h + rng.normal(0, 0.2, size=10) for h in honest
            ]
            agg.set_contributors([0, 1, 2, 3, 4])
            result = agg.aggregate(updates, rng)
        # sybil direction should be suppressed relative to plain averaging
        plain = np.mean(updates, axis=0)
        sybil_component = lambda v: float(
            np.dot(v, sybil_dir) / np.linalg.norm(sybil_dir) ** 2
        )
        assert sybil_component(result) < sybil_component(plain)

    def test_contributor_count_mismatch_rejected(self, rng):
        agg = FoolsGoldAggregator()
        agg.set_contributors([0, 1, 2])
        with pytest.raises(ValueError):
            agg.aggregate([np.zeros(2)] * 2, rng)

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            FoolsGoldAggregator(confidence=0.0)

    def test_single_client_attack_not_downweighted(self, rng):
        """The documented weakness: one attacker among diverse honest clients
        keeps weight (its history is not similar to anyone)."""
        agg = FoolsGoldAggregator()
        attacker = np.full(10, 5.0)
        honest = [rng.normal(size=10) for _ in range(4)]
        agg.set_contributors([0, 1, 2, 3, 4])
        result = agg.aggregate([attacker] + honest, rng)
        # attacker direction survives aggregation
        assert np.dot(result, attacker) > 0
