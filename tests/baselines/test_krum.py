"""Unit tests for Krum / multi-Krum."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.krum import KrumAggregator, krum_scores


class TestKrumScores:
    def test_outlier_gets_highest_score(self, rng):
        updates = rng.normal(size=(8, 5))
        updates[3] = 100.0
        scores = krum_scores(updates, num_malicious=1)
        assert scores.argmax() == 3

    def test_too_few_updates_rejected(self, rng):
        with pytest.raises(ValueError):
            krum_scores(rng.normal(size=(3, 2)), num_malicious=1)


class TestKrumAggregator:
    def test_selects_clustered_update(self, rng):
        clustered = [rng.normal(0.0, 0.1, size=4) for _ in range(6)]
        outlier = np.full(4, 50.0)
        agg = KrumAggregator(num_malicious=1)
        result = agg.aggregate(clustered + [outlier], rng)
        assert np.abs(result).max() < 1.0  # outlier not chosen

    def test_krum_returns_one_of_the_updates(self, rng):
        updates = [rng.normal(size=3) for _ in range(6)]
        result = KrumAggregator(num_malicious=1).aggregate(updates, rng)
        assert any(np.allclose(result, u) for u in updates)

    def test_multi_krum_averages_selection(self, rng):
        updates = [np.full(2, float(i)) for i in range(6)]
        result = KrumAggregator(num_malicious=1, multi_k=3).aggregate(updates, rng)
        # the three most central updates are 2, 3 (and 1 or 4)
        assert 1.0 <= result[0] <= 4.0

    def test_requires_individual_updates(self):
        assert KrumAggregator(0).requires_individual_updates

    def test_multi_k_bounds(self, rng):
        updates = [rng.normal(size=2) for _ in range(4)]
        with pytest.raises(ValueError):
            KrumAggregator(num_malicious=0, multi_k=4).aggregate(updates, rng)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            KrumAggregator(num_malicious=-1)
        with pytest.raises(ValueError):
            KrumAggregator(num_malicious=0, multi_k=0)

    def test_defeated_by_boosted_update_when_f_underestimated(self, rng):
        """Krum with f=0 can pick a colluding pair — the known weakness."""
        honest = [rng.normal(0.0, 1.0, size=4) for _ in range(4)]
        colluding = [np.full(4, 3.0), np.full(4, 3.0) + 1e-6]
        agg = KrumAggregator(num_malicious=0)
        result = agg.aggregate(honest + colluding, rng)
        # the colluding near-duplicates have tiny mutual distance and often win
        assert np.isfinite(result).all()
