"""Unit + property tests for repro.data.partition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    split_client_server,
    writer_partition,
)


class TestDirichletPartition:
    def test_is_a_partition(self, rng):
        labels = rng.integers(0, 5, size=300)
        parts = dirichlet_partition(labels, 10, 0.9, rng)
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(300))

    def test_min_samples_respected(self, rng):
        labels = rng.integers(0, 5, size=300)
        parts = dirichlet_partition(labels, 10, 0.1, rng, min_samples=5)
        assert min(len(p) for p in parts) >= 5

    def test_low_alpha_more_skewed_than_high(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 5, size=2000)
        low = dirichlet_partition(labels, 10, 0.05, np.random.default_rng(1))
        high = dirichlet_partition(labels, 10, 100.0, np.random.default_rng(1))

        def class_skew(parts):
            stds = []
            for p in parts:
                dist = np.bincount(labels[p], minlength=5) / max(len(p), 1)
                stds.append(dist.std())
            return np.mean(stds)

        assert class_skew(low) > class_skew(high)

    def test_invalid_args_rejected(self, rng):
        labels = np.zeros(10, dtype=int)
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 0, 0.9, rng)
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 2, 0.0, rng)
        with pytest.raises(ValueError):
            dirichlet_partition(labels, 20, 0.9, rng, min_samples=1)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_clients=st.integers(2, 12),
        num_classes=st.integers(2, 6),
        alpha=st.floats(0.1, 10.0),
    )
    def test_partition_property(self, seed, num_clients, num_classes, alpha):
        """Every index appears in exactly one shard, for any configuration."""
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, num_classes, size=50 * num_clients)
        parts = dirichlet_partition(labels, num_clients, alpha, rng)
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(len(labels)))


class TestIIDPartition:
    def test_is_a_partition(self, rng):
        parts = iid_partition(100, 7, rng)
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(100))

    def test_balanced_sizes(self, rng):
        parts = iid_partition(100, 7, rng)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            iid_partition(5, 10, rng)
        with pytest.raises(ValueError):
            iid_partition(5, 0, rng)


class TestWriterPartition:
    def test_groups_by_writer(self):
        writers = np.array([2, 0, 1, 0, 2, 2])
        parts = writer_partition(writers)
        assert [len(p) for p in parts] == [2, 1, 3]
        np.testing.assert_array_equal(parts[0], [1, 3])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            writer_partition(np.zeros((2, 2), dtype=int))


class TestSplitClientServer:
    def test_split_sizes(self, rng):
        ds = Dataset(rng.normal(size=(200, 3)), rng.integers(0, 2, 200), 2)
        clients, server = split_client_server(ds, 0.9, rng)
        assert len(clients) == 180 and len(server) == 20

    def test_invalid_share(self, rng):
        ds = Dataset(rng.normal(size=(10, 3)), rng.integers(0, 2, 10), 2)
        with pytest.raises(ValueError):
            split_client_server(ds, 1.0, rng)
