"""Unit tests for the synthetic CIFAR-like generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_cifar import (
    CIFAR_BACKDOOR_SOURCE_CLASS,
    CIFAR_BACKDOOR_TARGET_CLASS,
    SyntheticCifar,
)


class TestShapes:
    def test_flat_samples(self, cifar_task, rng):
        ds = cifar_task.sample(20, rng)
        assert ds.x.shape == (20, cifar_task.flat_dim)

    def test_image_samples(self, cifar_task, rng):
        ds = cifar_task.sample(5, rng, flat=False)
        assert ds.x.shape == (5, *cifar_task.image_shape)

    def test_pixels_in_unit_range(self, cifar_task, rng):
        ds = cifar_task.sample(50, rng)
        assert ds.x.min() >= 0.0 and ds.x.max() <= 1.0

    def test_invalid_image_size_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCifar(image_size=6)

    def test_too_few_classes_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCifar(num_classes=2)


class TestDistribution:
    def test_labels_roughly_uniform(self, cifar_task, rng):
        ds = cifar_task.sample(2000, rng)
        counts = ds.class_counts()
        assert counts.min() > 120  # expected 200 each

    def test_same_structure_seed_same_task(self, rng):
        a = SyntheticCifar(structure_seed=5)
        b = SyntheticCifar(structure_seed=5)
        da = a.sample(10, np.random.default_rng(3))
        db = b.sample(10, np.random.default_rng(3))
        np.testing.assert_array_equal(da.x, db.x)

    def test_different_structure_seed_differs(self):
        a = SyntheticCifar(structure_seed=5)
        b = SyntheticCifar(structure_seed=6)
        da = a.sample(10, np.random.default_rng(3))
        db = b.sample(10, np.random.default_rng(3))
        assert not np.allclose(da.x, db.x)

    def test_sample_class_is_single_class(self, cifar_task, rng):
        ds = cifar_task.sample_class(4, 15, rng)
        assert np.all(ds.y == 4)


class TestBackdoorInstances:
    def test_true_label_is_source_class(self, cifar_task, rng):
        ds = cifar_task.sample_backdoor_instances(30, rng)
        assert np.all(ds.y == CIFAR_BACKDOOR_SOURCE_CLASS)

    def test_target_differs_from_source(self):
        assert CIFAR_BACKDOOR_SOURCE_CLASS != CIFAR_BACKDOOR_TARGET_CLASS

    def test_striped_feature_changes_border_pixels(self, rng):
        task = SyntheticCifar(noise=0.0)
        plain = task.sample_class(CIFAR_BACKDOOR_SOURCE_CLASS, 8, np.random.default_rng(1), flat=False)
        striped = task.sample_backdoor_instances(8, np.random.default_rng(1), flat=False)
        # Striped backgrounds brighten alternating border rows.
        top_row_plain = plain.x[:, :, 0, :].mean()
        top_row_striped = striped.x[:, :, 0, :].mean()
        assert top_row_striped > top_row_plain + 0.1

    def test_striped_feature_is_learnable(self, rng):
        """A linear probe can separate striped from plain cars."""
        task = SyntheticCifar()
        plain = task.sample_class(CIFAR_BACKDOOR_SOURCE_CLASS, 300, rng)
        striped = task.sample_backdoor_instances(300, rng)
        x = np.concatenate([plain.x, striped.x])
        y = np.concatenate([np.zeros(300), np.ones(300)])
        # least-squares linear classifier
        xb = np.hstack([x, np.ones((len(x), 1))])
        w, *_ = np.linalg.lstsq(xb, 2 * y - 1, rcond=None)
        acc = ((xb @ w > 0) == y).mean()
        assert acc > 0.9

    def test_natural_samples_contain_striped_fraction(self, rng):
        task = SyntheticCifar(striped_fraction=0.5, noise=0.0)
        ds = task.sample(4000, rng, flat=False)
        cars = ds.x[ds.y == CIFAR_BACKDOOR_SOURCE_CLASS]
        top_rows = cars[:, :, 0, :].mean(axis=(1, 2))
        # Bimodal: about half the cars should have bright striped top rows.
        bright = (top_rows > 0.8).mean()
        assert 0.3 < bright < 0.7
