"""Unit tests for the synthetic FEMNIST-like generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_femnist import SyntheticFemnist


class TestShapes:
    def test_flat_dim(self, femnist_task, rng):
        ds = femnist_task.sample(10, rng)
        assert ds.x.shape == (10, femnist_task.flat_dim)

    def test_image_shape(self, femnist_task, rng):
        ds = femnist_task.sample(4, rng, flat=False)
        assert ds.x.shape == (4, 1, femnist_task.image_size, femnist_task.image_size)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            SyntheticFemnist(image_size=5)
        with pytest.raises(ValueError):
            SyntheticFemnist(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticFemnist(num_writers=0)


class TestWriters:
    def test_writer_ids_in_range(self, femnist_task, rng):
        _, writers = femnist_task.sample_with_writers(100, rng)
        assert writers.min() >= 0
        assert writers.max() < femnist_task.num_writers

    def test_writer_class_distribution_sums_to_one(self, femnist_task):
        for writer in range(femnist_task.num_writers):
            dist = femnist_task.writer_class_distribution(writer)
            assert dist.sum() == pytest.approx(1.0)

    def test_writers_have_skewed_class_usage(self, femnist_task):
        """Non-IID-ness: writers' class distributions differ substantially."""
        dists = np.stack(
            [
                femnist_task.writer_class_distribution(w)
                for w in range(femnist_task.num_writers)
            ]
        )
        spread = dists.std(axis=0).mean()
        assert spread > 0.02

    def test_sample_for_writer_respects_skew(self, femnist_task, rng):
        ds = femnist_task.sample_for_writer(0, 800, rng)
        expected = femnist_task.writer_class_distribution(0)
        observed = ds.class_distribution()
        assert np.abs(observed - expected).max() < 0.08

    def test_writer_out_of_range_rejected(self, femnist_task, rng):
        with pytest.raises(ValueError):
            femnist_task.sample_for_writer(99, 5, rng)

    def test_writer_styles_differ(self, rng):
        """Same class, different writers -> systematically different pixels."""
        task = SyntheticFemnist(num_writers=8, noise=0.0)
        a = task.sample_class_for_writer(0, 3, 50, np.random.default_rng(0))
        b = task.sample_class_for_writer(1, 3, 50, np.random.default_rng(0))
        assert np.abs(a.x.mean(axis=0) - b.x.mean(axis=0)).max() > 0.05


class TestSampling:
    def test_sample_class_for_writer_labels(self, femnist_task, rng):
        ds = femnist_task.sample_class_for_writer(2, 5, 20, rng)
        assert np.all(ds.y == 5)

    def test_sample_with_writers_labels_match_skew(self, femnist_task, rng):
        ds, writers = femnist_task.sample_with_writers(3000, rng)
        # pooled distribution = average of writers' distributions
        pooled = np.stack(
            [
                femnist_task.writer_class_distribution(w)
                for w in range(femnist_task.num_writers)
            ]
        ).mean(axis=0)
        observed = ds.class_distribution()
        assert np.abs(observed - pooled).max() < 0.05

    def test_pixels_in_unit_range(self, femnist_task, rng):
        ds = femnist_task.sample(100, rng)
        assert ds.x.min() >= 0.0 and ds.x.max() <= 1.0

    def test_deterministic_given_seeds(self):
        task = SyntheticFemnist(structure_seed=11, num_writers=4)
        a = task.sample(20, np.random.default_rng(5))
        b = SyntheticFemnist(structure_seed=11, num_writers=4).sample(
            20, np.random.default_rng(5)
        )
        np.testing.assert_array_equal(a.x, b.x)
