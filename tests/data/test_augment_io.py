"""Unit tests for augmentation and dataset I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.augment import (
    augment_dataset,
    gaussian_noise,
    random_horizontal_flip,
    random_shift,
)
from repro.data.dataset import Dataset
from repro.data.io import load_dataset, save_dataset


@pytest.fixture
def images(rng):
    return rng.random((10, 3, 8, 8))


class TestFlip:
    def test_probability_one_flips_everything(self, images, rng):
        flipped = random_horizontal_flip(images, rng, probability=1.0)
        np.testing.assert_array_equal(flipped, images[:, :, :, ::-1])

    def test_probability_zero_is_identity(self, images, rng):
        np.testing.assert_array_equal(
            random_horizontal_flip(images, rng, probability=0.0), images
        )

    def test_input_not_mutated(self, images, rng):
        original = images.copy()
        random_horizontal_flip(images, rng, probability=1.0)
        np.testing.assert_array_equal(images, original)

    def test_invalid_probability(self, images, rng):
        with pytest.raises(ValueError):
            random_horizontal_flip(images, rng, probability=1.5)


class TestShift:
    def test_zero_shift_is_identity(self, images, rng):
        np.testing.assert_array_equal(random_shift(images, rng, 0), images)

    def test_shift_preserves_shape(self, images, rng):
        assert random_shift(images, rng, 2).shape == images.shape

    def test_shifted_borders_are_zero_padded(self, rng):
        x = np.ones((50, 1, 4, 4))
        shifted = random_shift(x, rng, max_shift=1)
        # at least some images were shifted, introducing zero rows/cols
        assert (shifted == 0).any()

    def test_negative_shift_rejected(self, images, rng):
        with pytest.raises(ValueError):
            random_shift(images, rng, -1)

    def test_non_image_input_rejected(self, rng):
        with pytest.raises(ValueError):
            random_shift(np.zeros((5, 8)), rng, 1)


class TestNoise:
    def test_noise_stays_in_unit_range(self, images, rng):
        noisy = gaussian_noise(images, rng, std=0.5)
        assert noisy.min() >= 0.0 and noisy.max() <= 1.0

    def test_zero_std_is_identity_after_clip(self, images, rng):
        np.testing.assert_array_equal(
            gaussian_noise(np.clip(images, 0, 1), rng, std=0.0),
            np.clip(images, 0, 1),
        )

    def test_negative_std_rejected(self, images, rng):
        with pytest.raises(ValueError):
            gaussian_noise(images, rng, std=-0.1)


class TestAugmentDataset:
    def test_labels_preserved(self, rng):
        ds = Dataset(rng.random((12, 3, 8, 8)), rng.integers(0, 4, 12), 4)
        augmented = augment_dataset(ds, rng, noise_std=0.05)
        np.testing.assert_array_equal(augmented.y, ds.y)
        assert augmented.x.shape == ds.x.shape


class TestDatasetIO:
    def test_roundtrip(self, tmp_path, rng):
        ds = Dataset(rng.random((20, 6)), rng.integers(0, 3, 20), 3)
        path = save_dataset(ds, tmp_path / "data.npz")
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.x, ds.x)
        np.testing.assert_array_equal(loaded.y, ds.y)
        assert loaded.num_classes == 3

    def test_suffix_normalised(self, tmp_path, rng):
        ds = Dataset(rng.random((5, 2)), rng.integers(0, 2, 5), 2)
        path = save_dataset(ds, tmp_path / "data")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_arrays_rejected(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, x=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            load_dataset(bad)
