"""Unit tests for repro.data.dataset.Dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset


def make_ds(n=10, classes=3, rng=None):
    rng = rng or np.random.default_rng(0)
    return Dataset(rng.normal(size=(n, 4)), rng.integers(0, classes, size=n), classes)


class TestConstruction:
    def test_basic_fields(self):
        ds = make_ds(12, 3)
        assert len(ds) == 12
        assert ds.num_classes == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int), 2)

    def test_labels_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.array([0, 5]), 3)
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.array([-1, 0]), 3)

    def test_2d_labels_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.zeros((2, 1), dtype=int), 2)

    def test_zero_classes_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.zeros(2, dtype=int), 0)

    def test_empty_dataset_allowed(self):
        ds = Dataset(np.zeros((0, 4)), np.zeros(0, dtype=int), 3)
        assert len(ds) == 0
        np.testing.assert_array_equal(ds.class_distribution(), np.zeros(3))


class TestSlicing:
    def test_subset_copies(self):
        ds = make_ds()
        sub = ds.subset([0, 1])
        sub.x[0, 0] = 999.0
        assert ds.x[0, 0] != 999.0

    def test_filter_by_class(self):
        ds = make_ds(30, 3)
        only_zero = ds.filter_by_class([0])
        assert np.all(only_zero.y == 0)
        assert len(only_zero) == (ds.y == 0).sum()

    def test_split_fractions(self, rng):
        ds = make_ds(100)
        first, second = ds.split(0.7, rng)
        assert len(first) == 70 and len(second) == 30

    def test_split_is_a_partition(self, rng):
        ds = Dataset(np.arange(20.0).reshape(20, 1), np.zeros(20, dtype=int), 1)
        first, second = ds.split(0.5, rng)
        combined = sorted(first.x.ravel().tolist() + second.x.ravel().tolist())
        assert combined == list(ds.x.ravel())

    def test_split_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            make_ds().split(0.0, rng)

    def test_take_first_n(self):
        ds = Dataset(np.arange(10.0).reshape(10, 1), np.zeros(10, dtype=int), 1)
        np.testing.assert_array_equal(ds.take(3).x.ravel(), [0.0, 1.0, 2.0])

    def test_take_random_n(self, rng):
        ds = make_ds(10)
        taken = ds.take(5, rng)
        assert len(taken) == 5

    def test_take_too_many_rejected(self, rng):
        with pytest.raises(ValueError):
            make_ds(5).take(6)

    def test_shuffled_preserves_pairs(self, rng):
        ds = make_ds(20)
        pairs = {tuple(row) + (label,) for row, label in zip(ds.x, ds.y)}
        shuffled = ds.shuffled(rng)
        shuffled_pairs = {
            tuple(row) + (label,) for row, label in zip(shuffled.x, shuffled.y)
        }
        assert pairs == shuffled_pairs


class TestCombination:
    def test_concat_lengths_add(self):
        a, b = make_ds(4), make_ds(6)
        assert len(Dataset.concat([a, b])) == 10

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValueError):
            Dataset.concat([])

    def test_concat_class_mismatch_rejected(self):
        a = make_ds(4, classes=3)
        b = Dataset(np.zeros((2, 4)), np.zeros(2, dtype=int), 5)
        with pytest.raises(ValueError):
            Dataset.concat([a, b])

    def test_with_labels_replaces_labels_only(self):
        ds = make_ds(5, classes=3)
        relabelled = ds.with_labels(np.full(5, 2))
        np.testing.assert_array_equal(relabelled.x, ds.x)
        assert np.all(relabelled.y == 2)


class TestStatistics:
    def test_class_counts_sum_to_n(self):
        ds = make_ds(50, 4)
        assert ds.class_counts().sum() == 50

    def test_class_distribution_sums_to_one(self):
        ds = make_ds(50, 4)
        assert ds.class_distribution().sum() == pytest.approx(1.0)

    def test_repr_mentions_size(self):
        assert "n=10" in repr(make_ds(10))
