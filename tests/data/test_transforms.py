"""Unit tests for repro.data.transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.transforms import flatten_images, normalize_features


class TestFlattenImages:
    def test_flattens_image_batch(self, rng):
        x = rng.normal(size=(5, 3, 4, 4))
        assert flatten_images(x).shape == (5, 48)

    def test_keeps_2d_input(self, rng):
        x = rng.normal(size=(5, 8))
        np.testing.assert_array_equal(flatten_images(x), x)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            flatten_images(np.zeros(5))


class TestNormalizeFeatures:
    def test_zero_mean_unit_std(self, rng):
        x = rng.normal(3.0, 2.0, size=(100, 4))
        normalized, _, _ = normalize_features(x)
        np.testing.assert_allclose(normalized.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(normalized.std(axis=0), 1.0, atol=1e-12)

    def test_constant_feature_not_divided_by_zero(self):
        x = np.ones((10, 2))
        normalized, _, std = normalize_features(x)
        assert np.all(np.isfinite(normalized))

    def test_reusing_train_statistics(self, rng):
        train = rng.normal(size=(50, 3))
        test = rng.normal(size=(20, 3))
        _, mean, std = normalize_features(train)
        normalized_test, _, _ = normalize_features(test, mean, std)
        np.testing.assert_allclose(normalized_test, (test - mean) / std)
