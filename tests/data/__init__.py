"""Test package (required: duplicate test-module basenames need package-qualified import)."""
