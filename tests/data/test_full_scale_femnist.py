"""FEMNIST at its full 62-class scale (the paper's class count)."""

from __future__ import annotations

import numpy as np

from repro.data.synthetic_femnist import SyntheticFemnist
from repro.fl.client import LocalTrainingConfig, local_train
from repro.nn.metrics import accuracy
from repro.nn.models import make_mlp


class TestFull62ClassFemnist:
    def test_generator_supports_62_classes(self, rng):
        task = SyntheticFemnist(num_classes=62, num_writers=20)
        ds = task.sample(500, rng)
        assert ds.num_classes == 62
        assert ds.y.max() < 62

    def test_all_classes_reachable(self, rng):
        task = SyntheticFemnist(num_classes=62, num_writers=40)
        ds = task.sample(6000, rng)
        observed = set(np.unique(ds.y))
        assert len(observed) > 55  # virtually all classes appear

    def test_62_class_task_learnable(self, rng):
        """A model beats chance by a wide margin on the full class set."""
        task = SyntheticFemnist(num_classes=62, num_writers=20, noise=0.35)
        train = task.sample(4000, rng)
        test = task.sample(800, rng)
        model = make_mlp(task.flat_dim, 62, rng, hidden=(96,))
        local_train(model, train, LocalTrainingConfig(epochs=8, lr=0.1), rng)
        acc = accuracy(test.y, model.predict(test.x))
        assert acc > 0.5  # chance is ~0.016

    def test_writer_skew_present_at_scale(self, rng):
        task = SyntheticFemnist(num_classes=62, num_writers=30)
        dists = np.stack(
            [task.writer_class_distribution(w) for w in range(30)]
        )
        assert dists.std(axis=0).mean() > 0.005
