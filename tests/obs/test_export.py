"""Exporter tests: JSONL round-trip, Chrome trace shape, summaries, CLI."""

from __future__ import annotations

import json
import time

from repro.obs import Tracer
from repro.obs.cli import main as trace_cli
from repro.obs.export import (
    chrome_trace,
    diff_traces,
    export_run,
    load_trace,
    phase_table,
    summarize_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import NULL_TRACER


def traced_run(rounds: int = 3) -> Tracer:
    """A tracer carrying a small synthetic run: phases, a commit, a
    worker batch, and some metrics."""
    tracer = Tracer()
    for round_idx in range(rounds):
        for phase in ("select", "train", "aggregate", "validate"):
            with tracer.span(phase, round_idx=round_idx):
                pass
        with tracer.span("commit", cat="round", round_idx=round_idx):
            pass
        tracer.metrics.counter("rounds_total").inc()
        tracer.metrics.counter("rounds_accepted").inc()
    tracer.merge_worker(
        (
            4242,
            time.monotonic_ns(),
            [("train.client", "worker", time.monotonic_ns(), 500, 1, 0,
              {"client": 2})],
            (3, 1),
        )
    )
    tracer.metrics.gauge("rounds_per_s").set(12.5)
    tracer.metrics.counter("transport_bytes").inc(1000)
    return tracer


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = traced_run()
        path = write_jsonl(tracer, tmp_path / "run.jsonl")
        spans, snapshot, meta = load_trace(path)
        assert spans == tracer.finalized_spans()
        assert snapshot == tracer.metrics.snapshot()
        assert meta["server_pid"] == tracer.pid
        assert meta["format_version"] == 1

    def test_every_line_is_json(self, tmp_path):
        path = write_jsonl(traced_run(), tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        rows = [json.loads(line) for line in lines]
        assert rows[0]["type"] == "meta"
        assert rows[-1]["type"] == "metrics"
        assert all(r["type"] == "span" for r in rows[1:-1])

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "meta", "format_version": 99}) + "\n")
        try:
            load_trace(path)
        except ValueError as err:
            assert "version" in str(err)
        else:
            raise AssertionError("expected ValueError")


class TestChromeTrace:
    def test_loadable_json_with_required_keys(self, tmp_path):
        path = write_chrome_trace(traced_run(), tmp_path / "run.chrome.json")
        payload = json.load(open(path))
        events = payload["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert "ts" in event and "dur" in event
            elif event["ph"] == "i":
                assert event["s"] == "t"

    def test_process_metadata_labels_server_and_workers(self):
        tracer = traced_run()
        events = chrome_trace(tracer)["traceEvents"]
        names = {
            event["pid"]: event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert names[tracer.pid] == "server"
        assert names[4242] == "worker-4242"

    def test_round_index_folded_into_args(self):
        events = chrome_trace(traced_run())["traceEvents"]
        commits = [e for e in events if e["name"] == "commit"]
        assert [e["args"]["round"] for e in commits] == [0, 1, 2]


class TestSummaries:
    def test_phase_table_aggregates_phase_spans_only(self):
        spans = traced_run().finalized_spans()
        table = phase_table(spans)
        assert set(table) == {"select", "train", "aggregate", "validate"}
        assert all(row["count"] == 3 for row in table.values())

    def test_summary_mentions_rounds_and_phases(self):
        tracer = traced_run()
        text = summarize_trace(tracer.finalized_spans(), tracer.metrics.snapshot())
        assert "rounds: 3 (3 accepted" in text
        assert "throughput: 12.50 rounds/s" in text
        assert "train" in text and "validate" in text

    def test_diff_identical_traces_is_structurally_clean(self):
        spans = traced_run().finalized_spans()
        structural, lines = diff_traces(spans, spans)
        assert structural is None
        assert any("train" in line for line in lines)

    def test_diff_reports_first_divergence(self):
        a = traced_run(rounds=3).finalized_spans()
        b = traced_run(rounds=2).finalized_spans()
        structural, _ = diff_traces(a, b)
        assert structural is not None
        assert "diverge" in structural


class TestExportRun:
    def test_disabled_tracer_is_a_noop(self, tmp_path):
        assert export_run(NULL_TRACER, str(tmp_path), "run") is None
        assert export_run(traced_run(), None, "run") is None
        assert list(tmp_path.iterdir()) == []

    def test_writes_jsonl_and_chrome_with_distinct_names(self, tmp_path):
        first = export_run(traced_run(), str(tmp_path), "stable-s1")
        second = export_run(traced_run(), str(tmp_path), "stable-s1")
        assert first["jsonl"].exists() and first["chrome"].exists()
        # Same label twice must never overwrite (seed fan-out, sweeps).
        assert first["jsonl"] != second["jsonl"]
        spans, _, _ = load_trace(second["jsonl"])
        assert spans


class TestCli:
    def test_single_file_summarizes(self, tmp_path, capsys):
        path = write_jsonl(traced_run(), tmp_path / "a.jsonl")
        assert trace_cli([str(path)]) == 0
        out = capsys.readouterr().out
        assert "rounds: 3" in out

    def test_identical_pair_exits_zero(self, tmp_path, capsys):
        a = write_jsonl(traced_run(), tmp_path / "a.jsonl")
        b = write_jsonl(traced_run(), tmp_path / "b.jsonl")
        assert trace_cli([str(a), str(b)]) == 0
        assert "identical phase sequences" in capsys.readouterr().out

    def test_divergent_pair_exits_nonzero(self, tmp_path, capsys):
        a = write_jsonl(traced_run(rounds=3), tmp_path / "a.jsonl")
        b = write_jsonl(traced_run(rounds=1), tmp_path / "b.jsonl")
        assert trace_cli([str(a), str(b)]) == 1
        assert "diverge" in capsys.readouterr().out

    def test_usage_on_wrong_arity(self, capsys):
        assert trace_cli([]) == 2
        assert "usage" in capsys.readouterr().out
