"""Unit tests for spans, the tracer, clock-offset merge, and metrics."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    check_attrs,
    make_tracer,
)
from repro.obs.metrics import MetricsRegistry


class TestCheckAttrs:
    def test_scalars_pass_through_unchanged(self):
        attrs = {"clients": 3, "ratio": 0.5, "codec": "identity",
                 "ok": True, "missing": None}
        assert check_attrs(attrs) is attrs

    def test_arrays_are_rejected(self):
        with pytest.raises(TypeError, match="never capture arrays"):
            check_attrs({"weights": np.zeros(4, dtype=np.float64)})

    def test_containers_are_rejected(self):
        with pytest.raises(TypeError, match="must be a scalar"):
            check_attrs({"votes": [1, 0, 1]})


class TestSpanSchema:
    def test_dict_round_trip(self):
        span = Span(
            name="train", cat="phase", start_ns=123, dur_ns=456,
            pid=42, tid=7, round_idx=3, attrs={"clients": 2},
        )
        assert Span.from_dict(span.to_dict()) == span

    def test_instant_event_round_trip_keeps_none_round(self):
        span = Span(name="materialize", cat="event", start_ns=9, dur_ns=0,
                    pid=1, tid=1)
        restored = Span.from_dict(span.to_dict())
        assert restored.round_idx is None
        assert restored.dur_ns == 0


class TestNullTracer:
    def test_span_is_one_shared_object(self):
        a = NULL_TRACER.span("train", round_idx=1, clients=3)
        b = NULL_TRACER.span("validate")
        assert a is b  # zero allocation on the disabled hot path
        with a as span:
            assert span.duration_s == 0.0

    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.event("x") is None
        assert NULL_TRACER.merge_worker(None) is None
        assert NULL_TRACER.elapsed_s() == 0.0

    def test_make_tracer_dispatch(self):
        assert make_tracer(None) is NULL_TRACER
        assert make_tracer("") is NULL_TRACER
        assert isinstance(make_tracer("/tmp/traces"), Tracer)
        assert isinstance(make_tracer(None), NullTracer)


class TestTracerRecording:
    def test_span_records_on_exit_with_duration(self):
        tracer = Tracer()
        with tracer.span("train", round_idx=2, clients=3) as ctx:
            time.sleep(0.001)
        assert ctx.dur_ns > 0
        [span] = tracer.finalized_spans()
        assert span.name == "train"
        assert span.cat == "phase"
        assert span.round_idx == 2
        assert span.attrs == {"clients": 3}
        assert span.pid == tracer.pid
        assert span.tid == threading.get_ident()

    def test_phase_spans_feed_the_phase_histogram(self):
        tracer = Tracer()
        with tracer.span("validate", round_idx=0):
            pass
        with tracer.span("commit", cat="round", round_idx=0):
            pass
        snapshot = tracer.metrics.snapshot()
        assert "phase.validate_s" in snapshot["histograms"]
        assert snapshot["histograms"]["phase.validate_s"]["count"] == 1
        # Non-phase categories never pollute the phase histograms.
        assert "phase.commit_s" not in snapshot["histograms"]

    def test_event_is_instant(self):
        tracer = Tracer()
        tracer.event("materialize", round_idx=1, clients=4)
        [span] = tracer.finalized_spans()
        assert span.dur_ns == 0
        assert span.cat == "event"

    def test_array_attr_rejected_at_open_time(self):
        tracer = Tracer()
        with pytest.raises(TypeError):
            tracer.span("train", weights=np.zeros(3, dtype=np.float64))

    def test_finalized_spans_sorted_by_start(self):
        tracer = Tracer()
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        starts = [s.start_ns for s in tracer.finalized_spans()]
        assert starts == sorted(starts)


class TestWorkerMerge:
    @staticmethod
    def row(name, start_ns, dur_ns=100, round_idx=0):
        # (name, cat, start_ns, dur_ns, tid, round_idx, attrs): the tuple
        # shape _drain_worker_trace packs in repro.fl.parallel.
        return (name, "worker", start_ns, dur_ns, 1, round_idx, {"client": 5})

    def test_none_payload_is_ignored(self):
        tracer = Tracer()
        tracer.merge_worker(None)
        assert tracer.finalized_spans() == []

    def test_worker_span_lands_on_server_timeline(self):
        tracer = Tracer()
        # Worker clock 5 s behind the server's: raw row times would land
        # nonsensically in the past without offset normalization.
        skew = 5_000_000_000
        sent_ns = time.monotonic_ns() - skew
        server_before_merge = time.monotonic_ns()
        tracer.merge_worker(
            (9999, sent_ns, [self.row("train.client", sent_ns - 1000)], None)
        )
        [span] = tracer.finalized_spans()
        assert span.pid == 9999
        # Shifted by receive-sent: lands at (receive - 1000), i.e. on the
        # server's timeline, never 5 s in the past.
        assert span.start_ns >= server_before_merge - 1000
        assert span.dur_ns == 100
        assert span.attrs == {"client": 5}

    def test_min_offset_across_batches_wins(self):
        tracer = Tracer()
        now = time.monotonic_ns()
        # First batch simulates slow transit (sent long ago), second is
        # fresh: the fresh batch's tighter offset must re-anchor both.
        tracer.merge_worker((7, now - 2_000_000_000, [self.row("a", now)], None))
        tracer.merge_worker((7, time.monotonic_ns(), [self.row("b", now)], None))
        spans = {s.name: s for s in tracer.finalized_spans()}
        # Same worker-clock start, same pid => same (minimum) offset.
        assert spans["a"].start_ns == spans["b"].start_ns

    def test_store_stats_feed_shm_counters(self):
        tracer = Tracer()
        tracer.merge_worker((1, time.monotonic_ns(), [], (4, 3)))
        tracer.merge_worker((2, time.monotonic_ns(), [], (2, 1)))
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["shm.worker_attaches"] == 6
        assert counters["shm.worker_attach_hits"] == 4


class TestMetricsRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("rounds_total") is registry.counter("rounds_total")
        assert registry.gauge("rss") is registry.gauge("rss")
        assert registry.histogram("lag") is registry.histogram("lag")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("rounds_total").inc()
        registry.counter("rounds_total").inc(2)
        registry.gauge("rounds_per_s").set(3.5)
        for value in (1.0, 3.0):
            registry.histogram("acceptance_lag_rounds").observe(value)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"rounds_total": 3}
        assert snapshot["gauges"] == {"rounds_per_s": 3.5}
        hist = snapshot["histograms"]["acceptance_lag_rounds"]
        assert hist == {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0,
                        "mean": 2.0}

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("x").mean == 0.0
