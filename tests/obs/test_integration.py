"""Tracing under the real round engines.

The hard contract: tracing is pure observation.  A traced run commits
bit-identical models and round records to an untraced run of the same
seed, in every cell of the executor/store/mode matrix — and the trace
itself carries worker-side spans merged onto the server timeline, plus
rollback/replay spans when the pipeline unwinds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baffle import (
    BaffleConfig,
    BaffleDefense,
    ForcedRejectDefense,
    ValidatorPool,
)
from repro.core.validation import MisclassificationValidator
from repro.fl.model_store import InProcessModelStore, SharedMemoryModelStore
from repro.fl.parallel import SequentialExecutor, make_executor
from repro.fl.simulation import FederatedSimulation
from repro.obs import Tracer
from tests.fl.test_parallel import make_world, run_and_snapshot

ROUNDS = 8


def build_sim(executor, store=None, tracer=None, reject_rounds=None, seed=7):
    model, clients, server_data, config = make_world(seed)
    validator_pool = ValidatorPool.from_datasets(
        {c.client_id: c.dataset for c in clients}, min_history=4
    )
    baffle_config = BaffleConfig(
        lookback=4, quorum=2, num_validators=3, mode="both"
    )
    server_validator = MisclassificationValidator(server_data, min_history=4)
    if reject_rounds is None:
        defense = BaffleDefense(baffle_config, validator_pool, server_validator)
    else:
        defense = ForcedRejectDefense(
            baffle_config, validator_pool, server_validator,
            reject_rounds=reject_rounds,
        )
    defense.prime(model)
    return FederatedSimulation(
        model.clone(), clients, config, np.random.default_rng(seed + 1),
        defense=defense, executor=executor, model_store=store, tracer=tracer,
    )


class TestTracedUntracedBitIdentity:
    """Tracing must not perturb a single committed bit, anywhere in the
    {sequential, pool, thread} x {inprocess, shared} x {sync, pipelined}
    matrix (one traced run per engine family; the untraced cross-cell
    equivalence is tests/fl/test_parallel.py's job)."""

    @pytest.mark.parametrize(
        "workers, engine, store_cls, mode",
        [
            (0, None, InProcessModelStore, "sync"),
            (2, "process", SharedMemoryModelStore, "pipelined"),
            (2, "thread", InProcessModelStore, "sync"),
        ],
    )
    def test_traced_run_matches_untraced(self, workers, engine, store_cls, mode):
        untraced_flat, untraced_records = run_and_snapshot(
            build_sim(SequentialExecutor(), store=InProcessModelStore()),
            rounds=ROUNDS,
        )
        tracer = Tracer()
        store = store_cls()
        kwargs = {} if engine is None else {"engine": engine}
        with store, make_executor(
            workers, store=store, mode=mode, pipeline_depth=0, **kwargs
        ) as executor:
            flat, records = run_and_snapshot(
                build_sim(executor, store=store, tracer=tracer), rounds=ROUNDS
            )
        np.testing.assert_array_equal(untraced_flat, flat)
        assert untraced_records == records
        # And the run actually traced something round-shaped.
        spans = tracer.finalized_spans()
        assert sum(1 for s in spans if s.name == "train") == ROUNDS


class TestWorkerSpanMerge:
    def test_process_engine_ships_worker_spans_back(self):
        tracer = Tracer()
        store = SharedMemoryModelStore()
        with store, make_executor(2, store=store, engine="process") as executor:
            sim = build_sim(executor, store=store, tracer=tracer)
            sim.run(ROUNDS)
        spans = tracer.finalized_spans()
        worker_spans = [s for s in spans if s.pid != tracer.pid]
        assert worker_spans, "process workers must ship spans back"
        assert {s.cat for s in worker_spans} == {"worker"}
        names = {s.name for s in worker_spans}
        assert "train.client" in names or "train.cohort" in names
        # Offset normalization keeps the merged timeline sorted.
        starts = [s.start_ns for s in spans]
        assert starts == sorted(starts)
        # Worker store telemetry landed in the registry.
        counters = tracer.metrics.snapshot()["counters"]
        assert counters.get("shm.worker_attaches", 0) > 0

    def test_thread_engine_records_worker_spans_in_process(self):
        tracer = Tracer()
        store = InProcessModelStore()
        with make_executor(2, store=store, engine="thread") as executor:
            sim = build_sim(executor, store=store, tracer=tracer)
            sim.run(ROUNDS)
        spans = tracer.finalized_spans()
        worker_spans = [s for s in spans if s.cat == "worker"]
        assert worker_spans, "thread engine must record executor-level spans"
        # Same process, same clock: every span carries the server pid.
        assert {s.pid for s in spans} == {tracer.pid}
        names = {s.name for s in worker_spans}
        assert "train.client" in names or "train.cohort" in names
        assert "validate.vote" in names


class TestRoundLifecycleSpans:
    def test_commit_span_for_every_accepted_round(self):
        tracer = Tracer()
        sim = build_sim(SequentialExecutor(), tracer=tracer)
        records = sim.run(ROUNDS)
        commits = [
            s for s in tracer.finalized_spans()
            if s.name == "commit" and s.cat == "round"
        ]
        accepted = [r.round_idx for r in records if r.accepted]
        assert sorted(s.round_idx for s in commits) == accepted

    def test_phase_times_populated_on_records(self):
        tracer = Tracer()
        sim = build_sim(SequentialExecutor(), tracer=tracer)
        records = sim.run(ROUNDS)
        for record in records:
            assert {"select", "train", "aggregate"} <= set(record.phase_times)
            assert all(t >= 0.0 for t in record.phase_times.values())
        # Untraced runs leave the field empty (and excluded from ==).
        untraced = build_sim(SequentialExecutor()).run(ROUNDS)
        assert all(r.phase_times == {} for r in untraced)

    def test_forced_rollback_emits_rollback_and_replay_spans(self):
        tracer = Tracer()
        with make_executor(0, mode="pipelined", pipeline_depth=2) as executor:
            sim = build_sim(
                executor, tracer=tracer, reject_rounds=frozenset({3})
            )
            records = sim.run(ROUNDS)
        assert any(r.rollback_count for r in records), "rollback must occur"
        spans = tracer.finalized_spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        assert by_name.get("rollback"), "rollback span missing"
        assert by_name.get("replay"), "replay span missing"
        assert all(s.round_idx > 3 for s in by_name["replay"])
        reject_spans = [
            s for s in spans if s.cat == "round" and s.name == "reject"
        ]
        assert any(s.round_idx == 3 for s in reject_spans)
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["rollback_replays"] == sum(
            r.rollback_count for r in records
        )
        assert counters["rounds_rejected"] >= 1


class TestRunPersistence:
    def test_traced_records_round_trip_through_save_run(self, tmp_path):
        from repro.experiments.persistence import load_run, save_run

        tracer = Tracer()
        sim = build_sim(SequentialExecutor(), tracer=tracer)
        records = sim.run(ROUNDS)
        path = save_run(
            records,
            tmp_path / "run.json",
            metrics=tracer.metrics.snapshot(),
            metadata={"scenario": "test"},
        )
        rounds, metrics, metadata = load_run(path)
        assert len(rounds) == ROUNDS
        assert metadata == {"scenario": "test"}
        assert metrics["counters"]["rounds_total"] == ROUNDS
        for row, record in zip(rounds, records):
            assert row["round_idx"] == record.round_idx
            assert row["accepted"] == record.accepted
            assert set(row["phase_times"]) == set(record.phase_times)

    def test_untraced_records_save_without_phase_times(self, tmp_path):
        from repro.experiments.persistence import load_run, save_run

        records = build_sim(SequentialExecutor()).run(2)
        rounds, _, _ = load_run(save_run(records, tmp_path / "run.json"))
        assert all("phase_times" not in row for row in rounds)
