"""Unit tests for repro.nn.optim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, ConstantSchedule, StepSchedule


def make_param(value=1.0, grad=1.0):
    p = Parameter(np.array([value]))
    p.grad[...] = grad
    return p


class TestSGD:
    def test_plain_step(self):
        p = make_param(1.0, grad=2.0)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.value, [0.8])

    def test_weight_decay_adds_l2_pull(self):
        p = make_param(1.0, grad=0.0)
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.value, [1.0 - 0.1 * 0.5])

    def test_momentum_accumulates_velocity(self):
        p = make_param(0.0, grad=1.0)
        opt = SGD([p], lr=1.0, momentum=0.5)
        opt.step()  # v = 1, x = -1
        p.grad[...] = 1.0
        opt.step()  # v = 1.5, x = -2.5
        np.testing.assert_allclose(p.value, [-2.5])

    def test_nesterov_differs_from_plain_momentum(self):
        p1 = make_param(0.0, grad=1.0)
        p2 = make_param(0.0, grad=1.0)
        SGD([p1], lr=1.0, momentum=0.5).step()
        SGD([p2], lr=1.0, momentum=0.5, nesterov=True).step()
        assert p1.value[0] != p2.value[0]

    def test_lr_override_in_step(self):
        p = make_param(1.0, grad=1.0)
        SGD([p], lr=0.1).step(lr=0.01)
        np.testing.assert_allclose(p.value, [0.99])

    def test_zero_grad_via_optimizer(self):
        p = make_param(1.0, grad=3.0)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert np.all(p.grad == 0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lr": 0.0},
            {"lr": -1.0},
            {"lr": 0.1, "momentum": 1.0},
            {"lr": 0.1, "weight_decay": -0.1},
            {"lr": 0.1, "nesterov": True},
        ],
    )
    def test_invalid_hyperparams_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SGD([make_param()], **kwargs)

    def test_converges_on_quadratic(self):
        # minimize (x - 3)^2 by hand-computed gradients
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            p.zero_grad()
            p.grad[...] = 2 * (p.value - 3.0)
            opt.step()
        np.testing.assert_allclose(p.value, [3.0], atol=1e-6)


class TestSchedules:
    def test_constant(self):
        sched = ConstantSchedule(0.1)
        assert sched(0) == sched(1000) == 0.1

    def test_step_schedule_decays(self):
        sched = StepSchedule(1.0, step_size=10, gamma=0.1)
        assert sched(0) == 1.0
        assert sched(9) == 1.0
        assert sched(10) == pytest.approx(0.1)
        assert sched(25) == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "args", [(0.0, 10, 0.1), (0.1, 0, 0.1), (0.1, 10, 0.0), (0.1, 10, 1.5)]
    )
    def test_invalid_schedule_args(self, args):
        with pytest.raises(ValueError):
            StepSchedule(*args)
