"""Property-based invariants of the metrics the defense is built on."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.metrics import (
    accuracy,
    confusion_matrix,
    source_focused_errors,
    target_focused_errors,
)


@st.composite
def labelled_predictions(draw):
    num_classes = draw(st.integers(2, 8))
    n = draw(st.integers(1, 120))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    y_true = rng.integers(0, num_classes, size=n)
    y_pred = rng.integers(0, num_classes, size=n)
    return y_true, y_pred, num_classes


class TestConfusionMatrixProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=labelled_predictions())
    def test_total_mass_is_sample_count(self, data):
        y_true, y_pred, k = data
        assert confusion_matrix(y_true, y_pred, k).sum() == len(y_true)

    @settings(max_examples=50, deadline=None)
    @given(data=labelled_predictions())
    def test_row_sums_are_class_counts(self, data):
        y_true, y_pred, k = data
        conf = confusion_matrix(y_true, y_pred, k)
        np.testing.assert_array_equal(
            conf.sum(axis=1), np.bincount(y_true, minlength=k)
        )

    @settings(max_examples=50, deadline=None)
    @given(data=labelled_predictions())
    def test_transpose_swaps_roles(self, data):
        y_true, y_pred, k = data
        np.testing.assert_array_equal(
            confusion_matrix(y_true, y_pred, k).T,
            confusion_matrix(y_pred, y_true, k),
        )


class TestErrorViewProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=labelled_predictions())
    def test_error_mass_consistency(self, data):
        """Source and target views distribute the same total error mass,
        which equals 1 - accuracy under dataset normalisation."""
        y_true, y_pred, k = data
        conf = confusion_matrix(y_true, y_pred, k)
        vs = source_focused_errors(conf)
        vt = target_focused_errors(conf)
        total_error = 1.0 - accuracy(y_true, y_pred)
        np.testing.assert_allclose(vs.sum(), total_error, atol=1e-12)
        np.testing.assert_allclose(vt.sum(), total_error, atol=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(data=labelled_predictions())
    def test_errors_bounded(self, data):
        y_true, y_pred, k = data
        conf = confusion_matrix(y_true, y_pred, k)
        for view in (source_focused_errors(conf), target_focused_errors(conf)):
            assert (view >= 0).all()
            assert view.sum() <= 1.0 + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(data=labelled_predictions())
    def test_class_normalised_errors_are_rates(self, data):
        y_true, y_pred, k = data
        conf = confusion_matrix(y_true, y_pred, k)
        rates = source_focused_errors(conf, normalize="class")
        assert (rates >= 0).all() and (rates <= 1).all()
