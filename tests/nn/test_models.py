"""Unit tests for repro.nn.models factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.models import make_cnn, make_mlp, make_resnet_lite


class TestMakeMLP:
    def test_output_shape(self, rng):
        net = make_mlp(10, 4, rng, hidden=(16, 8))
        assert net.forward(rng.normal(size=(3, 10))).shape == (3, 4)

    def test_hidden_widths_respected(self, rng):
        net = make_mlp(10, 4, rng, hidden=(16, 8))
        dense_shapes = [p.shape for p in net.parameters() if p.value.ndim == 2]
        assert dense_shapes == [(10, 16), (16, 8), (8, 4)]

    def test_dropout_included_when_requested(self, rng):
        from repro.nn.layers import Dropout

        net = make_mlp(4, 2, rng, hidden=(8,), dropout=0.3)
        assert any(isinstance(layer, Dropout) for layer in net.layers)

    def test_invalid_dims_rejected(self, rng):
        with pytest.raises(ValueError):
            make_mlp(0, 3, rng)
        with pytest.raises(ValueError):
            make_mlp(3, 0, rng)

    def test_deterministic_given_seed(self):
        a = make_mlp(5, 3, np.random.default_rng(7))
        b = make_mlp(5, 3, np.random.default_rng(7))
        np.testing.assert_array_equal(a.get_flat(), b.get_flat())


class TestMakeCNN:
    def test_output_shape(self, rng):
        net = make_cnn((3, 8, 8), 10, rng)
        assert net.forward(rng.normal(size=(2, 3, 8, 8))).shape == (2, 10)

    def test_indivisible_spatial_dims_rejected(self, rng):
        with pytest.raises(ValueError):
            make_cnn((3, 6, 6), 10, rng, channels=(8, 16))

    def test_trains_on_small_problem(self, rng):
        net = make_cnn((1, 4, 4), 2, rng, channels=(4,))
        x = np.zeros((20, 1, 4, 4))
        x[:10, 0, 0, 0] = 1.0
        y = np.array([0] * 10 + [1] * 10)
        loss = SoftmaxCrossEntropy()
        from repro.nn.optim import SGD

        opt = SGD(net.parameters(), lr=0.1, momentum=0.9)
        for _ in range(60):
            net.zero_grad()
            loss.forward(net.forward(x, train=True), y)
            net.backward(loss.backward())
            opt.step()
        assert (net.predict(x) == y).mean() == 1.0


class TestMakeResnetLite:
    def test_output_shape(self, rng):
        net = make_resnet_lite((3, 8, 8), 10, rng)
        assert net.forward(rng.normal(size=(2, 3, 8, 8))).shape == (2, 10)

    def test_has_residual_blocks(self, rng):
        from repro.nn.layers import Residual

        net = make_resnet_lite((3, 8, 8), 10, rng, num_blocks=3)
        assert sum(isinstance(layer, Residual) for layer in net.layers) == 3

    def test_gradients_flow_end_to_end(self, rng):
        net = make_resnet_lite((1, 4, 4), 3, rng, width=4, num_blocks=1)
        loss = SoftmaxCrossEntropy()
        x = rng.normal(size=(4, 1, 4, 4))
        y = rng.integers(0, 3, size=4)
        net.zero_grad()
        loss.forward(net.forward(x, train=True), y)
        net.backward(loss.backward())
        assert np.abs(net.get_grad_flat()).max() > 0.0
