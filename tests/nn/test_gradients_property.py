"""Property-based gradient checks: analytic == numeric for random nets."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.models import make_mlp


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    input_dim=st.integers(2, 6),
    hidden=st.integers(3, 10),
    num_classes=st.integers(2, 5),
    batch=st.integers(1, 6),
)
def test_mlp_parameter_gradients_match_numeric(
    seed, input_dim, hidden, num_classes, batch
):
    """For arbitrary small MLPs, backprop equals central differences."""
    rng = np.random.default_rng(seed)
    net = make_mlp(input_dim, num_classes, rng, hidden=(hidden,))
    x = rng.normal(size=(batch, input_dim))
    y = rng.integers(0, num_classes, size=batch)
    loss = SoftmaxCrossEntropy()
    net.zero_grad()
    loss.forward(net.forward(x, train=True), y)
    net.backward(loss.backward())
    analytic = net.get_grad_flat()
    flat = net.get_flat()
    eps = 1e-6
    check = rng.choice(len(flat), size=min(8, len(flat)), replace=False)
    for i in check:
        plus = flat.copy()
        plus[i] += eps
        net.set_flat(plus)
        lp = loss.forward(net.forward(x), y)
        minus = flat.copy()
        minus[i] -= eps
        net.set_flat(minus)
        lm = loss.forward(net.forward(x), y)
        numeric = (lp - lm) / (2 * eps)
        assert abs(numeric - analytic[i]) < 1e-6


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), batch=st.integers(1, 8))
def test_input_gradient_matches_numeric(seed, batch):
    """Gradient w.r.t. the input (through the whole network) is exact."""
    rng = np.random.default_rng(seed)
    net = make_mlp(3, 2, rng, hidden=(5,))
    x = rng.normal(size=(batch, 3))
    y = rng.integers(0, 2, size=batch)
    loss = SoftmaxCrossEntropy()
    net.zero_grad()
    loss.forward(net.forward(x, train=True), y)
    grad_x = net.backward(loss.backward())
    eps = 1e-6
    for idx in [(0, 0), (batch - 1, 2)]:
        plus = x.copy()
        plus[idx] += eps
        minus = x.copy()
        minus[idx] -= eps
        numeric = (
            loss.forward(net.forward(plus), y) - loss.forward(net.forward(minus), y)
        ) / (2 * eps)
        assert abs(numeric - grad_x[idx]) < 1e-6
