"""Tests for the stacked execution substrate (repro.nn.stacked).

The headline guarantee: a stacked forward/backward/update over ``M``
same-architecture models is **bit-identical** to ``M`` per-model passes.
That rests on two host-BLAS properties (batched matmul == per-slice 2-D
matmul of the same shape; trailing-axis reductions associate identically
for equal trailing shapes), both re-verified here on every host running
the suite — if a BLAS build ever breaks them, these tests fail before any
engine-equivalence test does.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.activations import Tanh
from repro.nn.batchnorm import BatchNorm1d
from repro.nn.layers import Dense, Parameter, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.models import make_cnn, make_mlp, make_resnet_lite
from repro.nn.network import Network
from repro.nn.optim import SGD
from repro.nn.stacked import (
    StackedNetwork,
    StackedParameter,
    StackedSGD,
    StackingUnsupportedError,
    clip_gradients_stacked,
    stacked_predict,
    stacked_softmax_ce_grad,
    supports_stacking,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestBlasBitIdentityAssumptions:
    """The two host properties the stacked substrate is built on."""

    def test_batched_matmul_equals_per_slice(self, rng):
        for m, b, d, h in [(2, 1, 3, 2), (7, 32, 193, 64), (5, 17, 8, 11)]:
            x = rng.normal(size=(m, b, d))
            w = rng.normal(size=(m, d, h))
            batched = np.matmul(x, w)
            for i in range(m):
                np.testing.assert_array_equal(batched[i], x[i] @ w[i])
            # Transposed operands (the backward pass shapes) too.
            wgrad = np.matmul(x.transpose(0, 2, 1), batched)
            igrad = np.matmul(batched, w.transpose(0, 2, 1))
            for i in range(m):
                np.testing.assert_array_equal(wgrad[i], x[i].T @ batched[i])
                np.testing.assert_array_equal(igrad[i], batched[i] @ w[i].T)

    def test_shared_input_broadcast_equals_per_slice(self, rng):
        x = rng.normal(size=(19, 23))
        w = rng.normal(size=(6, 23, 9))
        out = np.matmul(x, w)
        for i in range(6):
            np.testing.assert_array_equal(out[i], x @ w[i])

    def test_trailing_axis_reductions_match(self, rng):
        arr = rng.normal(size=(5, 13, 7))
        s = arr.sum(axis=-1)
        m = arr.max(axis=-1)
        for i in range(5):
            np.testing.assert_array_equal(s[i], arr[i].sum(axis=-1))
            np.testing.assert_array_equal(m[i], arr[i].max(axis=-1))


def _stack_of_perturbed(template: Network, count: int, rng) -> list[Network]:
    models = []
    for _ in range(count):
        clone = template.clone()
        flat = clone.get_flat()
        clone.set_flat(flat + rng.normal(0.0, 0.1, size=flat.shape))
        models.append(clone)
    return models


class TestConstructionAndFlatViews:
    def test_from_network_round_trips_flat_rows(self, rng):
        template = make_mlp(5, 3, rng, hidden=(4,))
        flats = rng.normal(size=(4, template.num_parameters))
        stacked = StackedNetwork.from_network(template, flats)
        np.testing.assert_array_equal(stacked.get_flat(), flats)

    def test_from_models_matches_per_model_flats(self, rng):
        template = make_cnn((2, 8, 8), 4, rng, channels=(3,))
        models = _stack_of_perturbed(template, 3, rng)
        stacked = StackedNetwork.from_models(models)
        for i, model in enumerate(models):
            np.testing.assert_array_equal(stacked.get_flat()[i], model.get_flat())

    def test_shape_mismatch_rejected(self, rng):
        template = make_mlp(5, 3, rng, hidden=(4,))
        with pytest.raises(ValueError):
            StackedNetwork.from_network(
                template, np.zeros((2, template.num_parameters + 1))
            )
        other = make_mlp(6, 3, rng, hidden=(4,))
        with pytest.raises(ValueError):
            StackedNetwork.from_models([template, other])

    def test_unsupported_layers_raise_and_probe_false(self, rng):
        from repro.nn.layers import Residual

        for network in (
            Network([Dense(4, 4, rng), Tanh(), Dense(4, 2, rng)]),
            # A Residual is only stackable if its *inner* layers are.
            Network([Dense(4, 4, rng), Residual([Dense(4, 4, rng), Tanh()])]),
        ):
            assert not supports_stacking(network)
            with pytest.raises(StackingUnsupportedError):
                StackedNetwork.from_models([network, network])

    def test_batchnorm_and_resnet_probe_true(self, rng):
        assert supports_stacking(
            Network([Dense(4, 4, rng), BatchNorm1d(4), Dense(4, 2, rng)])
        )
        assert supports_stacking(make_resnet_lite((2, 6, 6), 3, rng))

    def test_dense_subclass_is_not_silently_stacked(self, rng):
        class WeirdDense(Dense):
            def forward(self, x, train=False):
                return super().forward(x, train=train) + 1.0

        assert not supports_stacking(Network([WeirdDense(3, 2, rng)]))

    def test_supported_factories_probe_true(self, rng):
        assert supports_stacking(make_mlp(5, 3, rng, hidden=(4, 3), dropout=0.2))
        assert supports_stacking(make_cnn((2, 8, 8), 4, rng, channels=(3, 4)))


class TestForwardEquivalence:
    @pytest.mark.parametrize("count", [1, 2, 5])
    def test_mlp_shared_input(self, rng, count):
        template = make_mlp(7, 4, rng, hidden=(6, 5))
        models = _stack_of_perturbed(template, count, rng)
        x = rng.normal(size=(13, 7))
        out = StackedNetwork.from_models(models).forward(x)
        for i, model in enumerate(models):
            np.testing.assert_array_equal(out[i], model.forward(x))

    def test_mlp_per_model_inputs(self, rng):
        template = make_mlp(5, 3, rng, hidden=(4,))
        models = _stack_of_perturbed(template, 3, rng)
        xs = rng.normal(size=(3, 9, 5))
        out = StackedNetwork.from_models(models).forward(xs)
        for i, model in enumerate(models):
            np.testing.assert_array_equal(out[i], model.forward(xs[i]))

    def test_cnn_shared_input(self, rng):
        template = make_cnn((2, 8, 8), 4, rng, channels=(3, 4))
        models = _stack_of_perturbed(template, 4, rng)
        x = rng.normal(size=(5, 2, 8, 8))
        out = StackedNetwork.from_models(models).forward(x)
        for i, model in enumerate(models):
            np.testing.assert_array_equal(out[i], model.forward(x))

    def test_predict_bitwise_equal_and_batched(self, rng):
        template = make_mlp(6, 5, rng, hidden=(8,))
        models = _stack_of_perturbed(template, 6, rng)
        x = rng.normal(size=(700, 6))  # spans multiple 512-sample batches
        preds = stacked_predict(models, x)
        for i, model in enumerate(models):
            np.testing.assert_array_equal(preds[i], model.predict(x))


def _per_model_step(model, x, y, lr=0.1, momentum=0.9, weight_decay=0.0):
    loss = SoftmaxCrossEntropy()
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum,
                    weight_decay=weight_decay)
    model.zero_grad()
    loss.forward(model.forward(x, train=True), y)
    model.backward(loss.backward())
    optimizer.step()
    return model.get_flat(), model.get_grad_flat()


class TestTrainingStepEquivalence:
    @pytest.mark.parametrize("factory, sample_shape", [
        (lambda rng: make_mlp(6, 4, rng, hidden=(5,)), (6,)),
        (lambda rng: make_cnn((2, 8, 8), 3, rng, channels=(3,)), (2, 8, 8)),
    ])
    def test_one_step_grads_and_weights_match(self, rng, factory, sample_shape):
        template = factory(rng)
        models = _stack_of_perturbed(template, 3, rng)
        xs = rng.normal(size=(3, 8) + sample_shape)
        ys = rng.integers(0, 3, size=(3, 8))

        stacked = StackedNetwork.from_models(models)
        optimizer = StackedSGD(stacked.parameters(), lr=0.1, momentum=0.9)
        stacked.zero_grad()
        logits = stacked.forward(xs, train=True)
        stacked.backward(stacked_softmax_ce_grad(logits, ys))
        optimizer.step()

        for i, model in enumerate(models):
            flat, _ = _per_model_step(model.clone(), xs[i], ys[i])
            np.testing.assert_array_equal(stacked.get_flat()[i], flat)

    def test_masked_step_leaves_idle_models_untouched(self, rng):
        template = make_mlp(4, 3, rng, hidden=(4,))
        models = _stack_of_perturbed(template, 3, rng)
        stacked = StackedNetwork.from_models(models)
        optimizer = StackedSGD(stacked.parameters(), lr=0.1, momentum=0.9)
        xs = rng.normal(size=(2, 5, 4))
        ys = rng.integers(0, 3, size=(2, 5))
        before = stacked.get_flat().copy()

        stacked.zero_grad()
        logits = stacked.forward(xs, train=True, idx=[0, 2])
        stacked.backward(stacked_softmax_ce_grad(logits, ys))
        optimizer.step(active=np.array([True, False, True]))

        after = stacked.get_flat()
        np.testing.assert_array_equal(after[1], before[1])  # bit-untouched
        for row, i in ((0, 0), (2, 1)):
            flat, _ = _per_model_step(models[row].clone(), xs[i], ys[i])
            np.testing.assert_array_equal(after[row], flat)

    def test_weight_decay_and_nesterov_match(self, rng):
        template = make_mlp(4, 3, rng, hidden=(4,))
        models = _stack_of_perturbed(template, 2, rng)
        xs = rng.normal(size=(2, 6, 4))
        ys = rng.integers(0, 3, size=(2, 6))

        stacked = StackedNetwork.from_models(models)
        optimizer = StackedSGD(
            stacked.parameters(), lr=0.05, momentum=0.8, weight_decay=1e-3,
            nesterov=True,
        )
        for _ in range(3):
            stacked.zero_grad()
            logits = stacked.forward(xs, train=True)
            stacked.backward(stacked_softmax_ce_grad(logits, ys))
            optimizer.step()

        for i, model in enumerate(models):
            clone = model.clone()
            loss = SoftmaxCrossEntropy()
            sgd = SGD(clone.parameters(), lr=0.05, momentum=0.8,
                      weight_decay=1e-3, nesterov=True)
            for _ in range(3):
                clone.zero_grad()
                loss.forward(clone.forward(xs[i], train=True), ys[i])
                clone.backward(loss.backward())
                sgd.step()
            np.testing.assert_array_equal(stacked.get_flat()[i], clone.get_flat())

    def test_clip_matches_per_model_clip(self, rng):
        from repro.fl.client import clip_gradients

        template = make_mlp(4, 3, rng, hidden=(4,))
        models = _stack_of_perturbed(template, 3, rng)
        xs = rng.normal(size=(3, 6, 4)) * 5.0  # large inputs force clipping
        ys = rng.integers(0, 3, size=(3, 6))

        stacked = StackedNetwork.from_models(models)
        stacked.zero_grad()
        logits = stacked.forward(xs, train=True)
        stacked.backward(stacked_softmax_ce_grad(logits, ys))
        clip_gradients_stacked(stacked.parameters(), 0.05)

        loss = SoftmaxCrossEntropy()
        for i, model in enumerate(models):
            clone = model.clone()
            clone.zero_grad()
            loss.forward(clone.forward(xs[i], train=True), ys[i])
            clone.backward(loss.backward())
            clip_gradients(clone, 0.05)
            offset = 0
            stacked_grads = np.concatenate(
                [p.grad[i].ravel() for p in stacked.parameters()]
            )
            np.testing.assert_array_equal(stacked_grads, clone.get_grad_flat())
            del offset

    def test_clip_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            clip_gradients_stacked([StackedParameter(np.zeros((2, 3)))], 0.0)

    def test_dropout_streams_match_cloned_models(self, rng):
        template = make_mlp(5, 3, rng, hidden=(6,), dropout=0.4)
        # Per-model path: each clone's dropout generator is a deepcopy of
        # the template's; the stacked path must reproduce exactly that.
        xs = rng.normal(size=(3, 7, 5))
        ys = rng.integers(0, 3, size=(3, 7))
        stacked = StackedNetwork.from_models([template] * 3)
        optimizer = StackedSGD(stacked.parameters(), lr=0.1, momentum=0.0)
        stacked.zero_grad()
        logits = stacked.forward(xs, train=True)
        stacked.backward(stacked_softmax_ce_grad(logits, ys))
        optimizer.step()
        for i in range(3):
            flat, _ = _per_model_step(template.clone(), xs[i], ys[i], momentum=0.0)
            np.testing.assert_array_equal(stacked.get_flat()[i], flat)


class TestErrorsAndEdges:
    def test_backward_before_forward_raises(self, rng):
        template = make_mlp(4, 3, rng, hidden=(4,))
        stacked = StackedNetwork.from_models([template, template])
        with pytest.raises(RuntimeError):
            stacked.backward(np.zeros((2, 3, 3)))

    def test_predict_empty_input_raises(self, rng):
        template = make_mlp(4, 3, rng, hidden=(4,))
        stacked = StackedNetwork.from_models([template])
        with pytest.raises(ValueError):
            stacked.predict(np.zeros((0, 4)))

    def test_stacked_predict_needs_models(self):
        with pytest.raises(ValueError):
            stacked_predict([], np.zeros((3, 4)))

    def test_loss_grad_shape_checked(self, rng):
        with pytest.raises(ValueError):
            stacked_softmax_ce_grad(np.zeros((2, 3, 4)), np.zeros((3, 2), dtype=int))

    def test_sgd_validation(self):
        p = [StackedParameter(np.zeros((2, 3)))]
        with pytest.raises(ValueError):
            StackedSGD(p, lr=0.0)
        with pytest.raises(ValueError):
            StackedSGD(p, momentum=1.0)
        with pytest.raises(ValueError):
            StackedSGD(p, weight_decay=-1.0)
        with pytest.raises(ValueError):
            StackedSGD(p, nesterov=True, momentum=0.0)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    count=st.integers(1, 5),
    input_dim=st.integers(2, 9),
    hidden=st.integers(2, 9),
    num_classes=st.integers(2, 5),
    batch=st.integers(1, 9),
)
def test_property_stacked_step_equals_per_model(
    seed, count, input_dim, hidden, num_classes, batch
):
    """Random odd shapes: one stacked SGD step == per-model SGD steps."""
    rng = np.random.default_rng(seed)
    template = make_mlp(input_dim, num_classes, rng, hidden=(hidden,))
    models = _stack_of_perturbed(template, count, rng)
    xs = rng.normal(size=(count, batch, input_dim))
    ys = rng.integers(0, num_classes, size=(count, batch))

    stacked = StackedNetwork.from_models(models)
    optimizer = StackedSGD(stacked.parameters(), lr=0.1, momentum=0.9)
    stacked.zero_grad()
    logits = stacked.forward(xs, train=True)
    stacked.backward(stacked_softmax_ce_grad(logits, ys))
    optimizer.step()

    for i, model in enumerate(models):
        flat, _ = _per_model_step(model.clone(), xs[i], ys[i])
        np.testing.assert_array_equal(stacked.get_flat()[i], flat)


def _bn_mlp(input_dim: int, hidden: int, num_classes: int, rng) -> Network:
    return Network([
        Dense(input_dim, hidden, rng),
        BatchNorm1d(hidden),
        ReLU(),
        Dense(hidden, num_classes, rng),
    ])


class TestBatchNormAndResidualEquivalence:
    """Stacked BatchNorm1d / Residual == per-model, bit for bit."""

    def test_batchnorm_train_step_and_running_stats_match(self, rng):
        template = _bn_mlp(6, 5, 3, rng)
        models = _stack_of_perturbed(template, 3, rng)
        xs = rng.normal(size=(3, 8, 6))
        ys = rng.integers(0, 3, size=(3, 8))

        stacked = StackedNetwork.from_models(models)
        optimizer = StackedSGD(stacked.parameters(), lr=0.1, momentum=0.9)
        stacked.zero_grad()
        logits = stacked.forward(xs, train=True)
        stacked.backward(stacked_softmax_ce_grad(logits, ys))
        optimizer.step()

        stacked_bn = stacked.layers[1]
        for i, model in enumerate(models):
            clone = model.clone()
            flat, _ = _per_model_step(clone, xs[i], ys[i])
            np.testing.assert_array_equal(stacked.get_flat()[i], flat)
            # The local (non-parameter) running statistics track too.
            bn = clone.layers[1]
            np.testing.assert_array_equal(stacked_bn.running_mean[i], bn.running_mean)
            np.testing.assert_array_equal(stacked_bn.running_var[i], bn.running_var)

    def test_batchnorm_eval_uses_per_model_running_stats(self, rng):
        template = _bn_mlp(5, 4, 3, rng)
        models = _stack_of_perturbed(template, 4, rng)
        # Desynchronize the running statistics per model before stacking.
        for i, model in enumerate(models):
            model.forward(rng.normal(size=(6 + i, 5)), train=True)
        x = rng.normal(size=(9, 5))
        out = StackedNetwork.from_models(models).forward(x)
        for i, model in enumerate(models):
            np.testing.assert_array_equal(out[i], model.forward(x))

    def test_resnet_lite_train_step_matches(self, rng):
        template = make_resnet_lite((2, 6, 6), 3, rng, width=4, num_blocks=1)
        models = _stack_of_perturbed(template, 3, rng)
        xs = rng.normal(size=(3, 4, 2, 6, 6))
        ys = rng.integers(0, 3, size=(3, 4))

        stacked = StackedNetwork.from_models(models)
        optimizer = StackedSGD(stacked.parameters(), lr=0.1, momentum=0.9)
        stacked.zero_grad()
        logits = stacked.forward(xs, train=True)
        stacked.backward(stacked_softmax_ce_grad(logits, ys))
        optimizer.step()

        for i, model in enumerate(models):
            flat, _ = _per_model_step(model.clone(), xs[i], ys[i])
            np.testing.assert_array_equal(stacked.get_flat()[i], flat)

    def test_resnet_lite_from_network_shared_input(self, rng):
        template = make_resnet_lite((2, 6, 6), 3, rng, width=4, num_blocks=2)
        models = _stack_of_perturbed(template, 3, rng)
        flats = np.stack([model.get_flat() for model in models])
        stacked = StackedNetwork.from_network(template, flats)
        np.testing.assert_array_equal(stacked.get_flat(), flats)
        x = rng.normal(size=(5, 2, 6, 6))
        out = stacked.forward(x)
        for i, model in enumerate(models):
            np.testing.assert_array_equal(out[i], model.forward(x))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    count=st.integers(1, 4),
    input_dim=st.integers(2, 8),
    hidden=st.integers(2, 8),
    batch=st.integers(2, 9),
)
def test_property_stacked_batchnorm_step_equals_per_model(
    seed, count, input_dim, hidden, batch
):
    """Random odd shapes through BatchNorm1d: stacked == per-model."""
    rng = np.random.default_rng(seed)
    template = _bn_mlp(input_dim, hidden, 3, rng)
    models = _stack_of_perturbed(template, count, rng)
    xs = rng.normal(size=(count, batch, input_dim))
    ys = rng.integers(0, 3, size=(count, batch))

    stacked = StackedNetwork.from_models(models)
    optimizer = StackedSGD(stacked.parameters(), lr=0.1, momentum=0.9)
    stacked.zero_grad()
    logits = stacked.forward(xs, train=True)
    stacked.backward(stacked_softmax_ce_grad(logits, ys))
    optimizer.step()

    for i, model in enumerate(models):
        flat, _ = _per_model_step(model.clone(), xs[i], ys[i])
        np.testing.assert_array_equal(stacked.get_flat()[i], flat)
