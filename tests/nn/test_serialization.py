"""Unit tests for repro.nn.serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import make_mlp
from repro.nn.serialization import (
    load_network_params,
    network_num_bytes,
    params_from_bytes,
    params_to_bytes,
    save_network_params,
)


class TestByteSerialization:
    def test_roundtrip_preserves_predictions(self, tiny_mlp, rng):
        x = rng.normal(size=(5, 2))
        before = tiny_mlp.predict(x)
        blob = params_to_bytes(tiny_mlp)
        tiny_mlp.set_flat(np.zeros(tiny_mlp.num_parameters))
        params_from_bytes(tiny_mlp, blob)
        np.testing.assert_array_equal(tiny_mlp.predict(x), before)

    def test_roundtrip_is_float32_lossy_but_close(self, tiny_mlp):
        flat = tiny_mlp.get_flat()
        blob = params_to_bytes(tiny_mlp)
        params_from_bytes(tiny_mlp, blob)
        np.testing.assert_allclose(tiny_mlp.get_flat(), flat, atol=1e-6)

    def test_blob_size_tracks_parameter_count(self, rng):
        small = make_mlp(2, 3, rng, hidden=(4,))
        large = make_mlp(2, 3, rng, hidden=(64,))
        assert len(params_to_bytes(large)) > len(params_to_bytes(small))

    def test_num_bytes_formula(self, tiny_mlp):
        assert network_num_bytes(tiny_mlp) == tiny_mlp.num_parameters * 4
        assert network_num_bytes(tiny_mlp, np.float64) == tiny_mlp.num_parameters * 8


class TestFileCheckpoints:
    def test_save_load_roundtrip(self, tiny_mlp, tmp_path, rng):
        path = tmp_path / "ckpt.npz"
        x = rng.normal(size=(4, 2))
        before = tiny_mlp.predict(x)
        save_network_params(tiny_mlp, path)
        tiny_mlp.set_flat(tiny_mlp.get_flat() * 0.0)
        load_network_params(tiny_mlp, path)
        np.testing.assert_array_equal(tiny_mlp.predict(x), before)

    def test_load_into_mismatched_network_rejected(self, tiny_mlp, tmp_path, rng):
        path = tmp_path / "ckpt.npz"
        save_network_params(tiny_mlp, path)
        other = make_mlp(2, 3, rng, hidden=(16,))
        with pytest.raises(ValueError):
            load_network_params(other, path)

    def test_load_checks_array_count(self, tiny_mlp, tmp_path, rng):
        path = tmp_path / "ckpt.npz"
        deep = make_mlp(2, 3, rng, hidden=(4, 4))
        save_network_params(deep, path)
        with pytest.raises(ValueError):
            load_network_params(tiny_mlp, path)
