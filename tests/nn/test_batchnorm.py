"""Unit tests for BatchNorm1d."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.batchnorm import BatchNorm1d
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.nn.optim import SGD


class TestForward:
    def test_train_output_is_normalised(self, rng):
        bn = BatchNorm1d(4)
        x = rng.normal(5.0, 3.0, size=(64, 4))
        out = bn.forward(x, train=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_gamma_beta_applied(self, rng):
        bn = BatchNorm1d(3)
        bn.gamma.value[...] = 2.0
        bn.beta.value[...] = 1.0
        x = rng.normal(size=(32, 3))
        out = bn.forward(x, train=True)
        np.testing.assert_allclose(out.mean(axis=0), 1.0, atol=1e-10)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(2, momentum=0.0)  # running stats = last batch
        x = rng.normal(3.0, 2.0, size=(128, 2))
        bn.forward(x, train=True)
        fresh = rng.normal(3.0, 2.0, size=(64, 2))
        out = bn.forward(fresh, train=False)
        assert abs(out.mean()) < 0.3  # approx normalised by running stats

    def test_wrong_width_rejected(self, rng):
        with pytest.raises(ValueError):
            BatchNorm1d(4).forward(rng.normal(size=(8, 3)))

    @pytest.mark.parametrize(
        "kwargs", [{"num_features": 0}, {"num_features": 2, "momentum": 1.0},
                   {"num_features": 2, "eps": 0.0}]
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            BatchNorm1d(**kwargs)


class TestBackward:
    def test_input_gradient_matches_numeric(self, rng):
        bn = BatchNorm1d(3)
        bn.gamma.value[...] = rng.uniform(0.5, 1.5, size=3)
        bn.beta.value[...] = rng.normal(size=3)
        x = rng.normal(size=(6, 3))
        grad_out = rng.normal(size=(6, 3))
        bn.forward(x, train=True)
        analytic = bn.backward(grad_out)
        eps = 1e-6
        numeric = np.zeros_like(x)
        for idx in np.ndindex(x.shape):
            plus = x.copy()
            plus[idx] += eps
            minus = x.copy()
            minus[idx] -= eps
            numeric[idx] = (
                (bn.forward(plus, train=True) * grad_out).sum()
                - (bn.forward(minus, train=True) * grad_out).sum()
            ) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_parameter_gradients_match_numeric(self, rng):
        bn = BatchNorm1d(2)
        x = rng.normal(size=(5, 2))
        grad_out = rng.normal(size=(5, 2))
        bn.forward(x, train=True)
        bn.backward(grad_out)
        eps = 1e-6
        for param in (bn.gamma, bn.beta):
            analytic = param.grad.copy()
            numeric = np.zeros_like(param.value)
            for i in range(param.size):
                orig = param.value[i]
                param.value[i] = orig + eps
                plus = (bn.forward(x, train=True) * grad_out).sum()
                param.value[i] = orig - eps
                minus = (bn.forward(x, train=True) * grad_out).sum()
                param.value[i] = orig
                numeric[i] = (plus - minus) / (2 * eps)
            np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            BatchNorm1d(2).backward(np.zeros((4, 2)))


class TestInNetwork:
    def test_network_with_batchnorm_trains(self, tiny_dataset, rng):
        net = Network(
            [Dense(2, 16, rng), BatchNorm1d(16), ReLU(), Dense(16, 3, rng)]
        )
        loss = SoftmaxCrossEntropy()
        opt = SGD(net.parameters(), lr=0.1, momentum=0.9)
        for _ in range(80):
            net.zero_grad()
            loss.forward(net.forward(tiny_dataset.x, train=True), tiny_dataset.y)
            net.backward(loss.backward())
            opt.step()
        acc = (net.predict(tiny_dataset.x) == tiny_dataset.y).mean()
        assert acc > 0.95

    def test_flat_params_include_gamma_beta(self, rng):
        net = Network([Dense(2, 4, rng), BatchNorm1d(4)])
        assert net.num_parameters == 2 * 4 + 4 + 4 + 4  # W, b, gamma, beta
