"""Unit tests for the extra activations and the Adam optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.activations import LeakyReLU, Sigmoid, Tanh
from repro.nn.adam import Adam
from repro.nn.layers import Dense, Parameter
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Network


def gradcheck_layer(layer, x, rng, atol=1e-7):
    grad_out = rng.normal(size=x.shape)
    layer.forward(x, train=True)
    analytic = layer.backward(grad_out)
    eps = 1e-6
    numeric = np.zeros_like(x)
    for idx in np.ndindex(x.shape):
        plus = x.copy()
        plus[idx] += eps
        minus = x.copy()
        minus[idx] -= eps
        numeric[idx] = (
            (layer.forward(plus) * grad_out).sum()
            - (layer.forward(minus) * grad_out).sum()
        ) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestActivations:
    def test_tanh_values(self):
        out = Tanh().forward(np.array([[0.0, 100.0, -100.0]]))
        np.testing.assert_allclose(out, [[0.0, 1.0, -1.0]], atol=1e-12)

    def test_tanh_gradient(self, rng):
        gradcheck_layer(Tanh(), rng.normal(size=(4, 5)), rng)

    def test_sigmoid_values(self):
        out = Sigmoid().forward(np.array([[0.0]]))
        np.testing.assert_allclose(out, [[0.5]])

    def test_sigmoid_stable_for_extreme_inputs(self):
        out = Sigmoid().forward(np.array([[1000.0, -1000.0]]))
        assert np.all(np.isfinite(out))

    def test_sigmoid_gradient(self, rng):
        gradcheck_layer(Sigmoid(), rng.normal(size=(4, 5)), rng)

    def test_leaky_relu_values(self):
        out = LeakyReLU(alpha=0.1).forward(np.array([[-2.0, 3.0]]))
        np.testing.assert_allclose(out, [[-0.2, 3.0]])

    def test_leaky_relu_gradient(self, rng):
        gradcheck_layer(LeakyReLU(alpha=0.1), rng.normal(size=(4, 5)), rng)

    def test_leaky_relu_invalid_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=-0.5)

    @pytest.mark.parametrize("layer_cls", [Tanh, Sigmoid])
    def test_backward_before_forward_raises(self, layer_cls):
        with pytest.raises(RuntimeError):
            layer_cls().backward(np.zeros((1, 2)))

    def test_tanh_network_trains(self, tiny_dataset, rng):
        net = Network([Dense(2, 12, rng), Tanh(), Dense(12, 3, rng)])
        loss = SoftmaxCrossEntropy()
        opt = Adam(net.parameters(), lr=0.05)
        for _ in range(150):
            net.zero_grad()
            loss.forward(net.forward(tiny_dataset.x, train=True), tiny_dataset.y)
            net.backward(loss.backward())
            opt.step()
        acc = (net.predict(tiny_dataset.x) == tiny_dataset.y).mean()
        assert acc > 0.95


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            p.zero_grad()
            p.grad[...] = 2 * (p.value - 3.0)
            opt.step()
        np.testing.assert_allclose(p.value, [3.0], atol=1e-3)

    def test_first_step_size_is_lr(self):
        """With bias correction, the first Adam step has magnitude ~lr."""
        p = Parameter(np.array([0.0]))
        p.grad[...] = 123.0
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(abs(p.value[0]), 0.01, rtol=1e-6)

    def test_weight_decay_pulls_to_zero(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.05, weight_decay=1.0)
        for _ in range(400):
            p.zero_grad()
            opt.step()
        assert abs(p.value[0]) < 1.0

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad[...] = 3.0
        Adam([p]).zero_grad()
        assert p.grad[0] == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lr": 0.0},
            {"beta1": 1.0},
            {"beta2": 1.0},
            {"eps": 0.0},
            {"weight_decay": -1.0},
        ],
    )
    def test_invalid_hyperparams(self, kwargs):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], **kwargs)
