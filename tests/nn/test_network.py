"""Unit tests for repro.nn.network.Network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.models import make_mlp
from repro.nn.network import Network


class TestFlatParameterViews:
    def test_get_set_roundtrip(self, tiny_mlp):
        flat = tiny_mlp.get_flat()
        tiny_mlp.set_flat(flat * 2.0)
        np.testing.assert_allclose(tiny_mlp.get_flat(), flat * 2.0)

    def test_flat_length_matches_num_parameters(self, tiny_mlp):
        assert len(tiny_mlp.get_flat()) == tiny_mlp.num_parameters

    def test_set_flat_rejects_wrong_length(self, tiny_mlp):
        with pytest.raises(ValueError):
            tiny_mlp.set_flat(np.zeros(3))

    def test_set_flat_changes_forward_output(self, tiny_mlp, rng):
        x = rng.normal(size=(4, 2))
        before = tiny_mlp.forward(x)
        tiny_mlp.set_flat(tiny_mlp.get_flat() + 0.5)
        after = tiny_mlp.forward(x)
        assert not np.allclose(before, after)

    def test_grad_flat_matches_parameter_grads(self, tiny_mlp, rng):
        loss = SoftmaxCrossEntropy()
        x = rng.normal(size=(4, 2))
        y = rng.integers(0, 3, size=4)
        tiny_mlp.zero_grad()
        loss.forward(tiny_mlp.forward(x, train=True), y)
        tiny_mlp.backward(loss.backward())
        flat_grad = tiny_mlp.get_grad_flat()
        manual = np.concatenate([p.grad.ravel() for p in tiny_mlp.parameters()])
        np.testing.assert_array_equal(flat_grad, manual)


class TestCloneSemantics:
    def test_clone_is_deep(self, tiny_mlp):
        clone = tiny_mlp.clone()
        clone.set_flat(clone.get_flat() + 1.0)
        assert not np.allclose(tiny_mlp.get_flat(), clone.get_flat())

    def test_clone_predicts_identically(self, tiny_mlp, rng):
        x = rng.normal(size=(5, 2))
        np.testing.assert_array_equal(
            tiny_mlp.predict(x), tiny_mlp.clone().predict(x)
        )


class TestInference:
    def test_predict_shape_and_range(self, tiny_mlp, rng):
        preds = tiny_mlp.predict(rng.normal(size=(7, 2)))
        assert preds.shape == (7,)
        assert preds.min() >= 0 and preds.max() < 3

    def test_predict_batched_equals_unbatched(self, tiny_mlp, rng):
        x = rng.normal(size=(20, 2))
        np.testing.assert_array_equal(
            tiny_mlp.predict(x, batch_size=3), tiny_mlp.predict(x, batch_size=100)
        )

    def test_predict_proba_rows_sum_to_one(self, tiny_mlp, rng):
        probs = tiny_mlp.predict_proba(rng.normal(size=(6, 2)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_predict_empty_input_raises(self, tiny_mlp):
        with pytest.raises(ValueError):
            tiny_mlp.predict(np.zeros((0, 2)))


class TestTraining:
    def test_loss_decreases_on_tiny_dataset(self, tiny_dataset, rng):
        from tests.conftest import train_briefly

        model = make_mlp(2, 3, rng, hidden=(8,))
        loss = SoftmaxCrossEntropy()
        initial = loss.forward(model.forward(tiny_dataset.x), tiny_dataset.y)
        train_briefly(model, tiny_dataset, rng)
        final = loss.forward(model.forward(tiny_dataset.x), tiny_dataset.y)
        assert final < initial / 5

    def test_zero_grad_clears_all(self, tiny_mlp, rng):
        loss = SoftmaxCrossEntropy()
        x = rng.normal(size=(4, 2))
        loss.forward(tiny_mlp.forward(x, train=True), rng.integers(0, 3, size=4))
        tiny_mlp.backward(loss.backward())
        tiny_mlp.zero_grad()
        assert np.all(tiny_mlp.get_grad_flat() == 0.0)

    def test_repr_mentions_layers(self, tiny_mlp):
        assert "Dense" in repr(tiny_mlp)


class TestEmptyNetwork:
    def test_empty_network_flat_params(self):
        net = Network([])
        assert net.get_flat().shape == (0,)
        assert net.num_parameters == 0
