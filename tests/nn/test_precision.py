"""Tests for the execution precision policy (repro.nn.precision)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.nn.initializers import he_normal, xavier_uniform, zeros_init
from repro.nn.layers import Parameter
from repro.nn.models import make_mlp
from repro.nn.precision import (
    DTYPE_POLICIES,
    ENV_POLICY,
    active_dtype,
    dtype_policy,
    get_dtype_policy,
    itemsize,
    set_dtype_policy,
)


class TestPolicyKnob:
    def test_default_is_float64(self):
        assert get_dtype_policy() == "float64"
        assert active_dtype() == np.dtype(np.float64)
        assert itemsize() == 8

    def test_scope_sets_and_restores(self):
        with dtype_policy("float32"):
            assert get_dtype_policy() == "float32"
            assert active_dtype() == np.dtype(np.float32)
            assert itemsize() == 4
        assert get_dtype_policy() == "float64"

    def test_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with dtype_policy("float32"):
                raise RuntimeError("boom")
        assert get_dtype_policy() == "float64"

    def test_scope_exports_env_for_workers(self):
        """The policy must ride the environment so forked/spawned pool
        workers inherit it without initializer plumbing."""
        with dtype_policy("float32"):
            assert os.environ.get(ENV_POLICY) == "float32"

    def test_nested_scopes(self):
        with dtype_policy("float32"):
            with dtype_policy("float64"):
                assert get_dtype_policy() == "float64"
            assert get_dtype_policy() == "float32"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="dtype policy"):
            set_dtype_policy("float16")
        with pytest.raises(ValueError, match="dtype policy"):
            with dtype_policy("bfloat16"):
                pass  # pragma: no cover

    def test_garbage_env_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(ENV_POLICY, "quadruple")
        assert get_dtype_policy() == "float64"

    def test_policy_names_are_exhaustive(self):
        assert DTYPE_POLICIES == ("float64", "float32")


class TestPolicyRoutedAllocations:
    def test_parameter_follows_policy(self):
        with dtype_policy("float32"):
            p = Parameter(np.ones((3, 2)))
            assert p.value.dtype == np.float32
            assert p.grad.dtype == np.float32
        assert Parameter(np.ones((3, 2))).value.dtype == np.float64

    @pytest.mark.parametrize("init", [he_normal, xavier_uniform, zeros_init])
    def test_initializers_follow_policy(self, init):
        with dtype_policy("float32"):
            assert init((4, 3), np.random.default_rng(0)).dtype == np.float32
        assert init((4, 3), np.random.default_rng(0)).dtype == np.float64

    @pytest.mark.parametrize("init", [he_normal, xavier_uniform])
    def test_draws_stay_float64_native(self, init):
        """Random draws happen in float64 and are cast afterwards: the
        float32 init is exactly the float64 init rounded, and the stream
        advances identically under both policies."""
        rng64 = np.random.default_rng(0)
        w64 = init((4, 3), rng64)
        rng32 = np.random.default_rng(0)
        with dtype_policy("float32"):
            w32 = init((4, 3), rng32)
        np.testing.assert_array_equal(w32, w64.astype(np.float32))
        assert rng64.random() == rng32.random()

    def test_network_runs_end_to_end_in_policy_dtype(self, rng):
        with dtype_policy("float32"):
            model = make_mlp(2, 3, rng, hidden=(8,))
            flat = model.get_flat()
            assert flat.dtype == np.float32
            out = model.forward(np.zeros((5, 2)), train=True)
            assert out.dtype == np.float32
            model.backward(np.ones_like(out) / 5)
            assert model.get_grad_flat().dtype == np.float32

    def test_set_flat_casts_to_policy(self, rng):
        with dtype_policy("float32"):
            model = make_mlp(2, 3, rng, hidden=(4,))
            model.set_flat(np.zeros(model.num_parameters, dtype=np.float64))
            assert model.get_flat().dtype == np.float32
