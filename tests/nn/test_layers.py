"""Unit tests for repro.nn.layers: shapes, semantics, exact gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    Parameter,
    ReLU,
    Residual,
)


def numeric_grad(forward_fn, x: np.ndarray, grad_out: np.ndarray, eps: float = 1e-6):
    """Central-difference gradient of ``sum(forward(x) * grad_out)`` w.r.t. x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float((forward_fn(x) * grad_out).sum())
        flat[i] = orig - eps
        minus = float((forward_fn(x) * grad_out).sum())
        flat[i] = orig
        grad.ravel()[i] = (plus - minus) / (2 * eps)
    return grad


class TestParameter:
    def test_zero_grad_resets(self):
        p = Parameter(np.ones((2, 2)))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0.0)

    def test_shape_and_size(self):
        p = Parameter(np.zeros((3, 4)))
        assert p.shape == (3, 4)
        assert p.size == 12

    def test_repr_contains_name(self):
        assert "myparam" in repr(Parameter(np.zeros(2), name="myparam"))


class TestDense:
    def test_forward_matches_matmul(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        expected = x @ layer.weight.value + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_no_bias_option(self, rng):
        layer = Dense(4, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_input_gradient_matches_numeric(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        grad_out = rng.normal(size=(5, 3))
        layer.forward(x, train=True)
        grad_in = layer.backward(grad_out)
        numeric = numeric_grad(lambda a: layer.forward(a), x.copy(), grad_out)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-7)

    def test_weight_gradient_accumulates(self, rng):
        layer = Dense(2, 2, rng)
        x = rng.normal(size=(3, 2))
        grad_out = rng.normal(size=(3, 2))
        layer.forward(x, train=True)
        layer.backward(grad_out)
        first = layer.weight.grad.copy()
        layer.forward(x, train=True)
        layer.backward(grad_out)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)

    def test_backward_without_forward_raises(self, rng):
        layer = Dense(2, 2, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestReLU:
    def test_forward_clamps_negatives(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks_gradient(self):
        layer = ReLU()
        x = np.array([[-1.0, 3.0]])
        layer.forward(x, train=True)
        grad = layer.backward(np.array([[5.0, 7.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 7.0]])

    def test_backward_without_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros((1, 2)))


class TestFlattenAndPooling:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x, train=True)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_maxpool_forward_values(self):
        layer = MaxPool2D(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_maxpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool2D(3).forward(np.zeros((1, 1, 4, 4)))

    def test_maxpool_gradient_routes_to_max(self):
        layer = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer.forward(x, train=True)
        grad = layer.backward(np.array([[[[10.0]]]]))
        np.testing.assert_array_equal(grad, [[[[0.0, 0.0], [0.0, 10.0]]]])

    def test_maxpool_tie_routes_to_one_element(self):
        layer = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2))
        layer.forward(x, train=True)
        grad = layer.backward(np.ones((1, 1, 1, 1)))
        assert grad.sum() == 1.0  # gradient not duplicated across ties

    def test_global_avg_pool(self, rng):
        layer = GlobalAvgPool()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x, train=True)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))
        grad = layer.backward(np.ones((2, 3)))
        np.testing.assert_allclose(grad, np.full_like(x, 1 / 16))


class TestDropout:
    def test_inactive_at_inference(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(4, 8))
        np.testing.assert_array_equal(layer.forward(x, train=False), x)

    def test_scaling_preserves_expectation(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((200, 200))
        out = layer.forward(x, train=True)
        assert abs(out.mean() - 1.0) < 0.05

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((10, 10))
        out = layer.forward(x, train=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal((out == 0), (grad == 0))


class TestConv2D:
    def test_output_shape(self, rng):
        layer = Conv2D(3, 5, kernel_size=3, rng=rng, padding=1)
        out = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 5, 8, 8)

    def test_stride_reduces_resolution(self, rng):
        layer = Conv2D(1, 1, kernel_size=3, rng=rng, stride=2, padding=1)
        out = layer.forward(rng.normal(size=(1, 1, 8, 8)))
        assert out.shape == (1, 1, 4, 4)

    def test_identity_kernel_preserves_input(self, rng):
        layer = Conv2D(1, 1, kernel_size=1, rng=rng, bias=False)
        layer.weight.value[...] = 1.0
        x = rng.normal(size=(1, 1, 4, 4))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_matches_explicit_convolution(self, rng):
        layer = Conv2D(1, 1, kernel_size=2, rng=rng, bias=False)
        x = rng.normal(size=(1, 1, 3, 3))
        out = layer.forward(x)
        w = layer.weight.value[0, 0]
        for i in range(2):
            for j in range(2):
                expected = (x[0, 0, i : i + 2, j : j + 2] * w).sum()
                assert abs(out[0, 0, i, j] - expected) < 1e-12

    def test_input_gradient_matches_numeric(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, rng=rng, padding=1)
        x = rng.normal(size=(2, 2, 4, 4))
        grad_out = rng.normal(size=(2, 3, 4, 4))
        layer.forward(x, train=True)
        grad_in = layer.backward(grad_out)
        numeric = numeric_grad(lambda a: layer.forward(a), x.copy(), grad_out)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-6)

    def test_weight_gradient_matches_numeric(self, rng):
        layer = Conv2D(1, 2, kernel_size=2, rng=rng)
        x = rng.normal(size=(2, 1, 3, 3))
        grad_out = rng.normal(size=(2, 2, 2, 2))
        layer.forward(x, train=True)
        layer.backward(grad_out)
        analytic = layer.weight.grad.copy()

        def loss_at(w):
            layer.weight.value[...] = w
            return float((layer.forward(x) * grad_out).sum())

        w0 = layer.weight.value.copy()
        numeric = np.zeros_like(w0)
        eps = 1e-6
        for idx in np.ndindex(w0.shape):
            w = w0.copy()
            w[idx] += eps
            plus = loss_at(w)
            w[idx] -= 2 * eps
            minus = loss_at(w)
            numeric[idx] = (plus - minus) / (2 * eps)
        layer.weight.value[...] = w0
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestResidual:
    def test_identity_branch_adds_input(self, rng):
        inner = Dense(4, 4, rng)
        inner.weight.value[...] = 0.0
        block = Residual([inner])
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(block.forward(x), x)

    def test_shape_change_rejected(self, rng):
        block = Residual([Dense(4, 5, rng)])
        with pytest.raises(ValueError):
            block.forward(np.zeros((2, 4)))

    def test_gradient_includes_skip_path(self, rng):
        inner = Dense(3, 3, rng)
        block = Residual([inner])
        x = rng.normal(size=(2, 3))
        grad_out = rng.normal(size=(2, 3))
        block.forward(x, train=True)
        grad_in = block.backward(grad_out)
        numeric = numeric_grad(lambda a: block.forward(a), x.copy(), grad_out)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-7)

    def test_parameters_come_from_inner_layers(self, rng):
        block = Residual([Dense(3, 3, rng), ReLU(), Dense(3, 3, rng)])
        assert len(block.parameters()) == 4


class TestDtypePreservation:
    """Parameter-free layers keep the input dtype end to end: a future
    float32 policy must not be silently upcast by scratch buffers
    (regression for the hardcoded-float64 ``_col2im`` scratch and the
    float64 dropout mask)."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_pooling_and_flatten(self, rng, dtype):
        x = rng.normal(size=(2, 3, 8, 8)).astype(dtype)
        for layer in (MaxPool2D(2), GlobalAvgPool(), Flatten()):
            out = layer.forward(x, train=True)
            assert out.dtype == dtype, type(layer).__name__
            grad = layer.backward(out.astype(dtype))
            assert grad.dtype == dtype, type(layer).__name__

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_relu_and_dropout(self, rng, dtype):
        x = rng.normal(size=(5, 7)).astype(dtype)
        relu = ReLU()
        assert relu.forward(x, train=True).dtype == dtype
        assert relu.backward(x).dtype == dtype
        drop = Dropout(0.5, np.random.default_rng(0))
        out = drop.forward(x, train=True)
        assert out.dtype == dtype
        assert drop.backward(out).dtype == dtype

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_im2col_col2im_round_trip_dtype(self, rng, dtype):
        from repro.nn.layers import _col2im, _im2col

        x = rng.normal(size=(2, 3, 6, 6)).astype(dtype)
        cols, out_h, out_w = _im2col(x, 3, 3, 1, 1)
        assert cols.dtype == dtype
        folded = _col2im(cols, x.shape, 3, 3, 1, 1, out_h, out_w)
        assert folded.dtype == dtype

    def test_dropout_float64_mask_values_unchanged(self):
        """The dtype fix must not perturb the float64 stream: mask values
        equal the historical ``(draw < keep) / keep`` computation."""
        x = np.ones((4, 6))
        drop = Dropout(0.3, np.random.default_rng(42))
        out = drop.forward(x, train=True)
        reference = (np.random.default_rng(42).random((4, 6)) < 0.7) / 0.7
        np.testing.assert_array_equal(out, reference)
