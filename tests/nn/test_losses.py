"""Unit tests for repro.nn.losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import MSELoss, SoftmaxCrossEntropy, log_softmax, softmax


class TestSoftmaxHelpers:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(6, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = rng.normal(size=(3, 5))
        np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)))


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((4, 10)), np.arange(4) % 10)
        assert abs(value - np.log(10)) < 1e-12

    def test_perfect_prediction_gives_near_zero(self):
        loss = SoftmaxCrossEntropy()
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        assert loss.forward(logits, np.array([1, 2])) < 1e-8

    def test_gradient_matches_numeric(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(5, 4))
        targets = rng.integers(0, 4, size=5)
        loss.forward(logits, targets)
        analytic = loss.backward()
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for idx in np.ndindex(logits.shape):
            plus = logits.copy()
            plus[idx] += eps
            minus = logits.copy()
            minus[idx] -= eps
            numeric[idx] = (
                loss.forward(plus, targets) - loss.forward(minus, targets)
            ) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = SoftmaxCrossEntropy()
        loss.forward(rng.normal(size=(6, 3)), rng.integers(0, 3, size=6))
        np.testing.assert_allclose(loss.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_rejects_bad_shapes(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3, 4)), np.zeros(2))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.zeros(3))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()


class TestMSELoss:
    def test_zero_for_identical_inputs(self, rng):
        loss = MSELoss()
        x = rng.normal(size=(3, 2))
        assert loss.forward(x, x.copy()) == 0.0

    def test_value_matches_definition(self):
        loss = MSELoss()
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        assert loss.forward(pred, target) == pytest.approx(2.5)

    def test_gradient_matches_numeric(self, rng):
        loss = MSELoss()
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        loss.forward(pred, target)
        analytic = loss.backward()
        np.testing.assert_allclose(analytic, 2 * (pred - target) / pred.size)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros((2, 2)), np.zeros((2, 3)))
