"""Unit tests for repro.nn.metrics, including the paper's error views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.metrics import (
    accuracy,
    confusion_matrix,
    per_class_error_rates,
    source_focused_errors,
    target_focused_errors,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_half(self):
        assert accuracy(np.array([0, 1]), np.array([0, 2])) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))


class TestConfusionMatrix:
    def test_counts(self):
        conf = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]), 2)
        np.testing.assert_array_equal(conf, [[1, 1], [0, 2]])

    def test_total_equals_samples(self, rng):
        y = rng.integers(0, 5, size=100)
        p = rng.integers(0, 5, size=100)
        assert confusion_matrix(y, p, 5).sum() == 100

    def test_diagonal_is_correct_predictions(self, rng):
        y = rng.integers(0, 4, size=50)
        p = y.copy()
        conf = confusion_matrix(y, p, 4)
        assert np.trace(conf) == 50

    def test_out_of_range_labels_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 5]), np.array([0, 1]), 3)
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0, 7]), 3)


class TestErrorViews:
    def test_source_focused_definition(self):
        # class 0: 1 of 3 samples misclassified; class 1: 0 of 1.
        y = np.array([0, 0, 0, 1])
        p = np.array([0, 0, 1, 1])
        conf = confusion_matrix(y, p, 2)
        np.testing.assert_allclose(
            source_focused_errors(conf, normalize="dataset"), [0.25, 0.0]
        )
        np.testing.assert_allclose(
            source_focused_errors(conf, normalize="class"), [1 / 3, 0.0]
        )

    def test_target_focused_definition(self):
        # one sample wrongly assigned to class 1
        y = np.array([0, 0, 0, 1])
        p = np.array([0, 0, 1, 1])
        conf = confusion_matrix(y, p, 2)
        np.testing.assert_allclose(
            target_focused_errors(conf, normalize="dataset"), [0.0, 0.25]
        )

    def test_perfect_model_has_zero_errors(self, rng):
        y = rng.integers(0, 3, size=30)
        conf = confusion_matrix(y, y, 3)
        assert source_focused_errors(conf).sum() == 0.0
        assert target_focused_errors(conf).sum() == 0.0

    def test_source_and_target_sums_agree(self, rng):
        # total misclassified mass is the same from both views
        y = rng.integers(0, 4, size=60)
        p = rng.integers(0, 4, size=60)
        conf = confusion_matrix(y, p, 4)
        assert source_focused_errors(conf).sum() == pytest.approx(
            target_focused_errors(conf).sum()
        )

    def test_class_normalization_handles_absent_class(self):
        y = np.array([0, 0])
        p = np.array([0, 1])
        conf = confusion_matrix(y, p, 3)
        errors = source_focused_errors(conf, normalize="class")
        assert errors[2] == 0.0  # absent class: defined as zero, not NaN

    def test_unknown_normalize_mode_rejected(self):
        conf = confusion_matrix(np.array([0]), np.array([0]), 2)
        with pytest.raises(ValueError):
            source_focused_errors(conf, normalize="bogus")

    def test_empty_confusion_rejected(self):
        with pytest.raises(ValueError):
            source_focused_errors(np.zeros((3, 3), dtype=int))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            source_focused_errors(np.zeros((2, 3)))

    def test_wrapper_matches_components(self, rng):
        y = rng.integers(0, 3, size=40)
        p = rng.integers(0, 3, size=40)
        vs, vt = per_class_error_rates(y, p, 3)
        conf = confusion_matrix(y, p, 3)
        np.testing.assert_array_equal(vs, source_focused_errors(conf))
        np.testing.assert_array_equal(vt, target_focused_errors(conf))
