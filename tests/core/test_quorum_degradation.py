"""Quorum policies under vote loss: ``strict`` stalls, ``degrade`` shrinks.

BaFFLe's feedback loop aggregates votes from remote client validators;
a dropped vote is a deployment fact, not a corner case.  These tests pin
the two explicit policies: ``strict`` refuses to decide over a partial
quorum (:class:`~repro.fl.faults.QuorumStallError`), ``degrade``
recomputes the accept/reject decision over the votes that arrived — once
at least ``quorum_min`` of them did — and stamps the decision as
degraded so the shrink can never pass as a full quorum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baffle import BaffleConfig
from repro.fl.faults import QuorumStallError
from repro.fl.model_store import InProcessModelStore
from repro.fl.parallel import SequentialExecutor, make_executor
from tests.fl.test_faults import (
    DROPPED_ROUND,
    DROPPED_VALIDATOR,
    build_policy_sim,
)

DROP = f"drop@{DROPPED_ROUND}.vote.{DROPPED_VALIDATOR}"


class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="quorum_policy"):
            BaffleConfig(lookback=4, quorum=2, num_validators=3,
                         quorum_policy="hope")

    def test_quorum_min_floor(self):
        with pytest.raises(ValueError, match="quorum_min"):
            BaffleConfig(lookback=4, quorum=2, num_validators=3,
                         quorum_min=0)

    def test_quorum_min_cannot_exceed_the_validator_panel(self):
        with pytest.raises(ValueError, match="quorum_min"):
            BaffleConfig(lookback=4, quorum=2, num_validators=3,
                         mode="both", quorum_min=4)


class TestStrictPolicy:
    def test_dropped_vote_stalls_the_round(self):
        with SequentialExecutor() as executor:
            executor.bind_faults(plan=DROP)
            sim = build_policy_sim(
                executor, policy="strict", store=InProcessModelStore()
            )
            with pytest.raises(QuorumStallError, match="strict"):
                sim.run(8)

    def test_no_loss_means_no_stall(self):
        with SequentialExecutor() as executor:
            sim = build_policy_sim(
                executor, policy="strict", store=InProcessModelStore()
            )
            records = sim.run(8)
        assert all(r.quorum_size == 3 for r in records)
        assert not any(r.decision.quorum_degraded for r in records)


class TestDegradePolicy:
    def test_dropped_vote_shrinks_the_quorum(self):
        with SequentialExecutor() as executor:
            executor.bind_faults(plan=DROP)
            sim = build_policy_sim(
                executor, policy="degrade", store=InProcessModelStore()
            )
            records = sim.run(8)
            stats = executor.resilience.as_dict()
        degraded = records[DROPPED_ROUND]
        assert degraded.decision.quorum_degraded
        assert degraded.quorum_size == 2
        assert DROPPED_VALIDATOR not in degraded.decision.client_votes
        # Every other round decided over the full panel.
        assert all(
            r.quorum_size == 3 for r in records
            if r.round_idx != DROPPED_ROUND
        )
        assert stats["dropped_votes"] == 1
        assert stats["quorum_degradations"] == 1

    def test_quorum_min_boundary(self):
        """3 validators, 1 dropped: quorum_min=2 decides, quorum_min=3
        stalls even under ``degrade``."""
        with SequentialExecutor() as executor:
            executor.bind_faults(plan=DROP)
            sim = build_policy_sim(
                executor, policy="degrade", quorum_min=2,
                store=InProcessModelStore(),
            )
            records = sim.run(8)
        assert records[DROPPED_ROUND].decision.quorum_degraded

        with SequentialExecutor() as executor:
            executor.bind_faults(plan=DROP)
            sim = build_policy_sim(
                executor, policy="degrade", quorum_min=3,
                store=InProcessModelStore(),
            )
            with pytest.raises(QuorumStallError, match="quorum_min"):
                sim.run(8)

    def test_pipelined_drop_commits_identical_models_when_quorum_accepts(self):
        """A dropped vote whose surviving quorum still accepts changes
        nothing about the committed models — even pipelined, where the
        dropped round's quorum resolves while later rounds already run."""
        with SequentialExecutor() as executor:
            sim = build_policy_sim(executor, store=InProcessModelStore())
            base_records = sim.run(8)
            base_flat = sim.global_model.get_flat()
        assert base_records[DROPPED_ROUND].accepted

        with make_executor(0, mode="pipelined", pipeline_depth=2,
                           faults=DROP) as executor:
            sim = build_policy_sim(
                executor, policy="degrade", store=InProcessModelStore()
            )
            records = sim.run(8)
            flat = sim.global_model.get_flat()
            stats = executor.resilience.as_dict()
        np.testing.assert_array_equal(base_flat, flat)
        assert [r.accepted for r in records] == [
            r.accepted for r in base_records
        ]
        assert records[DROPPED_ROUND].decision.quorum_degraded
        # The pipelined quorum replay observes the loss exactly once.
        assert stats["dropped_votes"] == 1
        assert stats["quorum_degradations"] == 1
