"""Unit tests for repro.core.errors (eqs. 2-3 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    ErrorProfile,
    error_variation_vector,
    model_error_profile,
)
from repro.data.dataset import Dataset
from tests.conftest import train_briefly


def profile_from_vectors(vs, vt, n=100):
    vs = np.asarray(vs, dtype=float)
    return ErrorProfile(vs, np.asarray(vt, dtype=float), n, len(vs))


class TestErrorProfile:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ErrorProfile(np.zeros(3), np.zeros(4), 10, 3)
        with pytest.raises(ValueError):
            ErrorProfile(np.zeros(4), np.zeros(3), 10, 3)

    def test_model_profile_matches_manual_computation(self, tiny_dataset, tiny_mlp):
        profile = model_error_profile(tiny_mlp, tiny_dataset)
        preds = tiny_mlp.predict(tiny_dataset.x)
        wrong = preds != tiny_dataset.y
        for y in range(3):
            manual_source = ((tiny_dataset.y == y) & wrong).mean()
            assert profile.source_errors[y] == pytest.approx(manual_source)
            manual_target = ((preds == y) & wrong).mean()
            assert profile.target_errors[y] == pytest.approx(manual_target)

    def test_trained_model_has_lower_errors(self, tiny_dataset, rng):
        from repro.nn.models import make_mlp

        model = make_mlp(2, 3, rng, hidden=(8,))
        before = model_error_profile(model, tiny_dataset)
        train_briefly(model, tiny_dataset, rng)
        after = model_error_profile(model, tiny_dataset)
        assert after.source_errors.sum() <= before.source_errors.sum()

    def test_empty_dataset_rejected(self, tiny_mlp):
        empty = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 3)
        with pytest.raises(ValueError):
            model_error_profile(tiny_mlp, empty)


class TestErrorVariationVector:
    def test_layout_is_source_then_target(self):
        older = profile_from_vectors([0.3, 0.1, 0.0], [0.2, 0.2, 0.0])
        newer = profile_from_vectors([0.1, 0.1, 0.0], [0.1, 0.3, 0.0])
        v = error_variation_vector(older, newer)
        np.testing.assert_allclose(v[:3], [0.2, 0.0, 0.0])  # eq. (2)
        np.testing.assert_allclose(v[3:], [0.1, -0.1, 0.0])  # eq. (3)

    def test_identical_profiles_give_zero_vector(self):
        p = profile_from_vectors([0.1, 0.2], [0.2, 0.1])
        np.testing.assert_array_equal(
            error_variation_vector(p, p), np.zeros(4)
        )

    def test_dimension_is_twice_num_classes(self):
        p = profile_from_vectors(np.zeros(7), np.zeros(7))
        assert len(error_variation_vector(p, p)) == 14

    def test_class_count_mismatch_rejected(self):
        a = profile_from_vectors(np.zeros(3), np.zeros(3))
        b = profile_from_vectors(np.zeros(4), np.zeros(4))
        with pytest.raises(ValueError):
            error_variation_vector(a, b)

    def test_antisymmetry(self):
        a = profile_from_vectors([0.3, 0.0], [0.1, 0.2])
        b = profile_from_vectors([0.1, 0.1], [0.0, 0.2])
        np.testing.assert_allclose(
            error_variation_vector(a, b), -error_variation_vector(b, a)
        )

    def test_identical_models_on_same_data(self, tiny_dataset, tiny_mlp):
        p1 = model_error_profile(tiny_mlp, tiny_dataset)
        p2 = model_error_profile(tiny_mlp.clone(), tiny_dataset)
        np.testing.assert_array_equal(
            error_variation_vector(p1, p2), np.zeros(6)
        )


class TestStackedErrorProfiles:
    """The stacked profile path is bit-identical to per-model profiling."""

    def _models(self, tiny_mlp, rng, count):
        models = []
        for _ in range(count):
            clone = tiny_mlp.clone()
            flat = clone.get_flat()
            clone.set_flat(flat + rng.normal(0.0, 0.5, size=flat.shape))
            models.append(clone)
        return models

    @pytest.mark.parametrize("normalize", ["dataset", "class"])
    @pytest.mark.parametrize("count", [1, 2, 7])
    def test_bitwise_equal_to_per_model(
        self, tiny_dataset, tiny_mlp, rng, normalize, count
    ):
        from repro.core.errors import stacked_error_profiles

        models = self._models(tiny_mlp, rng, count)
        stacked = stacked_error_profiles(models, tiny_dataset, normalize=normalize)
        for model, profile in zip(models, stacked):
            single = model_error_profile(model, tiny_dataset, normalize=normalize)
            np.testing.assert_array_equal(profile.source_errors, single.source_errors)
            np.testing.assert_array_equal(profile.target_errors, single.target_errors)
            assert profile.num_samples == single.num_samples
            assert profile.num_classes == single.num_classes

    def test_chunked_stacks_still_match(self, tiny_dataset, tiny_mlp, rng):
        """More models than one cache-budget chunk: results are unchanged
        (per-slice GEMMs are bit-identical under any chunking)."""
        from repro.core import errors as errors_mod
        from repro.core.errors import stacked_error_profiles

        models = self._models(tiny_mlp, rng, 9)
        reference = stacked_error_profiles(models, tiny_dataset)
        old = errors_mod._PROFILE_CHUNK_BYTES
        errors_mod._PROFILE_CHUNK_BYTES = 1  # force 2-model chunks
        try:
            chunked = stacked_error_profiles(models, tiny_dataset)
        finally:
            errors_mod._PROFILE_CHUNK_BYTES = old
        for a, b in zip(reference, chunked):
            np.testing.assert_array_equal(a.source_errors, b.source_errors)
            np.testing.assert_array_equal(a.target_errors, b.target_errors)

    def test_empty_inputs(self, tiny_dataset, tiny_mlp):
        from repro.core.errors import stacked_error_profiles

        assert stacked_error_profiles([], tiny_dataset) == []
        empty = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 3)
        with pytest.raises(ValueError):
            stacked_error_profiles([tiny_mlp], empty)

    def test_bad_normalize_rejected(self, tiny_dataset, tiny_mlp):
        from repro.core.errors import stacked_error_profiles

        with pytest.raises(ValueError):
            stacked_error_profiles([tiny_mlp], tiny_dataset, normalize="weird")
