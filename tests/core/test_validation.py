"""Unit tests for Algorithm 2 (MisclassificationValidator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.validation import (
    ConstantVoteValidator,
    MisclassificationValidator,
    ValidationContext,
)
from repro.data.dataset import Dataset
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.models import make_mlp
from repro.nn.optim import SGD


@pytest.fixture
def evolution(rng):
    """A gently evolving model history + validation data.

    Returns ``(history, dataset, final_model)`` where history holds 13
    training snapshots (versions 0..12).
    """
    centers = np.array([[2.0, 0.0], [-2.0, 1.5], [0.0, -2.5]])
    labels = np.tile(np.arange(3), 40)
    x = centers[labels] + rng.normal(0.0, 0.8, size=(120, 2))
    dataset = Dataset(x, labels, 3)
    model = make_mlp(2, 3, rng, hidden=(8,))
    loss = SoftmaxCrossEntropy()
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    history = []
    version = 0
    for _ in range(40):
        model.zero_grad()
        loss.forward(model.forward(dataset.x, train=True), dataset.y)
        model.backward(loss.backward())
        opt.step()
    for _ in range(13):
        for _ in range(2):
            model.zero_grad()
            loss.forward(model.forward(dataset.x, train=True), dataset.y)
            model.backward(loss.backward())
            opt.step()
        history.append((version, model.clone()))
        version += 1
    return history, dataset, model


def poison_model(model, dataset, rng):
    """Fine-tune the model to misclassify class 0 as class 1."""
    poisoned = model.clone()
    flipped = dataset.y.copy()
    flipped[dataset.y == 0] = 1
    loss = SoftmaxCrossEntropy()
    opt = SGD(poisoned.parameters(), lr=0.1, momentum=0.9)
    for _ in range(30):
        poisoned.zero_grad()
        loss.forward(poisoned.forward(dataset.x, train=True), flipped)
        poisoned.backward(loss.backward())
        opt.step()
    return poisoned


class TestVoting:
    def test_benign_continuation_accepted(self, evolution, rng):
        history, dataset, model = evolution
        validator = MisclassificationValidator(dataset)
        # one more benign step as the candidate
        candidate = model.clone()
        loss = SoftmaxCrossEntropy()
        opt = SGD(candidate.parameters(), lr=0.05)
        for _ in range(2):
            candidate.zero_grad()
            loss.forward(candidate.forward(dataset.x, train=True), dataset.y)
            candidate.backward(loss.backward())
            opt.step()
        vote = validator.vote(ValidationContext(candidate, history), rng)
        assert vote == 0

    def test_poisoned_candidate_rejected(self, evolution, rng):
        history, dataset, model = evolution
        validator = MisclassificationValidator(dataset)
        poisoned = poison_model(model, dataset, rng)
        vote = validator.vote(ValidationContext(poisoned, history), rng)
        assert vote == 1

    def test_identical_candidate_accepted(self, evolution, rng):
        """A candidate with the exact predictions of the latest model."""
        history, dataset, model = evolution
        validator = MisclassificationValidator(dataset)
        candidate = history[-1][1].clone()
        vote = validator.vote(ValidationContext(candidate, history), rng)
        assert vote == 0

    def test_short_history_abstains(self, evolution, rng):
        history, dataset, model = evolution
        validator = MisclassificationValidator(dataset)
        report = validator.explain(ValidationContext(model, history[:3]))
        assert report.abstained
        assert report.vote == 0


class TestReports:
    def test_report_fields_populated(self, evolution):
        history, dataset, model = evolution
        validator = MisclassificationValidator(dataset)
        report = validator.explain(ValidationContext(model, history))
        assert not report.abstained
        assert report.candidate_lof is not None
        assert report.threshold is not None
        assert len(report.trusted_lofs) >= 1

    def test_poisoned_lof_exceeds_benign_lof(self, evolution, rng):
        history, dataset, model = evolution
        validator = MisclassificationValidator(dataset)
        benign = validator.explain(ValidationContext(history[-1][1], history))
        poisoned_model = poison_model(model, dataset, rng)
        poisoned = validator.explain(ValidationContext(poisoned_model, history))
        assert poisoned.candidate_lof > benign.candidate_lof


class TestCaching:
    def test_profiles_cached_by_version(self, evolution):
        history, dataset, model = evolution
        validator = MisclassificationValidator(dataset)
        validator.explain(ValidationContext(model, history))
        cached = set(validator._profile_cache)
        assert cached == {v for v, _ in history}

    def test_cache_pruned_for_old_versions(self, evolution):
        history, dataset, model = evolution
        validator = MisclassificationValidator(dataset)
        validator.explain(ValidationContext(model, history))
        validator.explain(ValidationContext(model, history[5:]))
        assert min(validator._profile_cache) >= history[5][0]


class TestConfiguration:
    def test_empty_dataset_rejected(self):
        empty = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 2)
        with pytest.raises(ValueError):
            MisclassificationValidator(empty)

    def test_bad_min_history_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            MisclassificationValidator(tiny_dataset, min_history=2)

    def test_bad_slack_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            MisclassificationValidator(tiny_dataset, threshold_slack=0.9)

    def test_slack_one_is_paper_literal_rule(self, evolution, rng):
        """slack = 1.0 is accepted (the paper's exact threshold)."""
        history, dataset, _ = evolution
        validator = MisclassificationValidator(dataset, threshold_slack=1.0)
        report = validator.explain(ValidationContext(history[-1][1], history))
        assert not report.abstained


class TestConstantVoteValidator:
    def test_always_rejects(self, evolution, rng):
        history, dataset, model = evolution
        dos = ConstantVoteValidator(1)
        assert dos.vote(ValidationContext(model, history), rng) == 1

    def test_always_accepts(self, evolution, rng):
        history, dataset, model = evolution
        shill = ConstantVoteValidator(0)
        assert shill.vote(ValidationContext(model, history), rng) == 0

    def test_invalid_vote_rejected(self):
        with pytest.raises(ValueError):
            ConstantVoteValidator(2)


class TestStackedProfileValidation:
    """Stacked cold-profile computation changes throughput, never votes."""

    def _history(self, tiny_mlp, rng, count=7):
        history = []
        for version in range(count):
            clone = tiny_mlp.clone()
            flat = clone.get_flat()
            clone.set_flat(flat + rng.normal(0.0, 0.5, size=flat.shape))
            history.append((version, clone))
        return history

    def test_cold_reports_identical_with_and_without_stacking(
        self, tiny_dataset, tiny_mlp, rng
    ):
        history = self._history(tiny_mlp, rng)
        candidate = tiny_mlp.clone()
        flat = candidate.get_flat()
        candidate.set_flat(flat + rng.normal(0.0, 0.5, size=flat.shape))
        context = ValidationContext(candidate, history)
        stacked = MisclassificationValidator(
            tiny_dataset, min_history=4, stack_profiles=True
        ).explain(context)
        plain = MisclassificationValidator(
            tiny_dataset, min_history=4, stack_profiles=False
        ).explain(context)
        assert stacked == plain
        assert not stacked.abstained

    def test_stacked_fill_populates_the_version_cache(
        self, tiny_dataset, tiny_mlp, rng
    ):
        history = self._history(tiny_mlp, rng)
        validator = MisclassificationValidator(
            tiny_dataset, min_history=4, stack_profiles=True
        )
        validator.explain(ValidationContext(tiny_mlp.clone(), history))
        assert set(validator._profile_cache) == {v for v, _ in history}

    def test_unstackable_architecture_falls_back(self, tiny_dataset, rng):
        from repro.nn.models import make_resnet_lite

        # Image-shaped dataset for the resnet; stacking is unsupported, so
        # the validator silently takes the per-model path.
        x = rng.normal(size=(30, 1, 4, 4))
        y = rng.integers(0, 3, size=30)
        dataset = Dataset(x, y, 3)
        template = make_resnet_lite((1, 4, 4), 3, rng)
        history = []
        for version in range(6):
            clone = template.clone()
            flat = clone.get_flat()
            clone.set_flat(flat + rng.normal(0.0, 0.5, size=flat.shape))
            history.append((version, clone))
        validator = MisclassificationValidator(
            dataset, min_history=4, stack_profiles=True
        )
        report = validator.explain(ValidationContext(template.clone(), history))
        reference = MisclassificationValidator(
            dataset, min_history=4, stack_profiles=False
        ).explain(ValidationContext(template.clone(), history))
        assert report == reference
