"""Unit + property tests for the from-scratch Local Outlier Factor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lof import local_outlier_factor, lof_scores


def gaussian_cluster(rng, n=30, dim=3, scale=1.0):
    return rng.normal(0.0, scale, size=(n, dim))


class TestLofScores:
    def test_uniform_cluster_scores_near_one(self, rng):
        points = gaussian_cluster(rng, n=60)
        scores = lof_scores(points, k=10)
        assert 0.8 < np.median(scores) < 1.3

    def test_planted_outlier_has_max_score(self, rng):
        points = gaussian_cluster(rng, n=40)
        points[0] = 50.0  # far outlier
        scores = lof_scores(points, k=5)
        assert scores.argmax() == 0
        assert scores[0] > 3.0

    def test_invalid_k_rejected(self, rng):
        points = gaussian_cluster(rng, n=10)
        with pytest.raises(ValueError):
            lof_scores(points, k=0)
        with pytest.raises(ValueError):
            lof_scores(points, k=10)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            lof_scores(np.zeros(5), k=2)

    def test_duplicate_cluster_scores_are_finite(self):
        points = np.zeros((10, 2))
        scores = lof_scores(points, k=3)
        assert np.all(np.isfinite(scores))
        np.testing.assert_allclose(scores, 1.0)


class TestLocalOutlierFactor:
    def test_query_inside_cluster_near_one(self, rng):
        reference = gaussian_cluster(rng, n=50)
        query = rng.normal(0.0, 1.0, size=3)
        lof = local_outlier_factor(query, reference, k=10)
        assert 0.5 < lof < 2.0

    def test_query_far_outside_is_outlier(self, rng):
        reference = gaussian_cluster(rng, n=50)
        query = np.full(3, 100.0)
        assert local_outlier_factor(query, reference, k=10) > 10.0

    def test_monotone_in_distance(self, rng):
        reference = gaussian_cluster(rng, n=50)
        lofs = [
            local_outlier_factor(np.full(3, d), reference, k=10)
            for d in (5.0, 20.0, 80.0)
        ]
        assert lofs[0] < lofs[1] < lofs[2]

    def test_duplicate_query_is_inlier(self, rng):
        reference = np.zeros((12, 2))
        assert local_outlier_factor(np.zeros(2), reference, k=4) == 1.0

    def test_scale_invariance(self, rng):
        """LOF is a density ratio: rescaling all points preserves it."""
        reference = gaussian_cluster(rng, n=40)
        query = rng.normal(size=3) * 3.0
        a = local_outlier_factor(query, reference, k=8)
        b = local_outlier_factor(query * 7.0, reference * 7.0, k=8)
        assert a == pytest.approx(b, rel=1e-9)

    def test_k_larger_than_reference_clamped(self, rng):
        reference = gaussian_cluster(rng, n=5)
        lof = local_outlier_factor(np.zeros(3), reference, k=100)
        assert np.isfinite(lof)

    def test_small_reference_rejected(self, rng):
        with pytest.raises(ValueError):
            local_outlier_factor(np.zeros(2), np.zeros((1, 2)), k=1)

    def test_dim_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            local_outlier_factor(np.zeros(3), np.zeros((5, 2)), k=2)

    def test_non_vector_query_rejected(self):
        with pytest.raises(ValueError):
            local_outlier_factor(np.zeros((2, 2)), np.zeros((5, 4)), k=2)


class TestLofProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(8, 40),
        dim=st.integers(1, 6),
        k=st.integers(2, 6),
    )
    def test_lof_positive_and_finite(self, seed, n, dim, k):
        """LOF is always a positive finite number for generic data."""
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=(n, dim))
        query = rng.normal(size=dim)
        lof = local_outlier_factor(query, reference, k=min(k, n - 1))
        assert np.isfinite(lof)
        assert lof > 0.0

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), shift=st.floats(10.0, 1000.0))
    def test_translation_invariance(self, seed, shift):
        """LOF is computed from pairwise distances: translation-invariant."""
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=(20, 3))
        query = rng.normal(size=3)
        a = local_outlier_factor(query, reference, k=5)
        b = local_outlier_factor(query + shift, reference + shift, k=5)
        assert a == pytest.approx(b, rel=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_inlier_vs_planted_outlier_ordering(self, seed):
        """A cluster member always scores below a far-away point."""
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=(25, 4))
        inlier = rng.normal(size=4) * 0.5
        outlier = np.full(4, 30.0)
        assert local_outlier_factor(inlier, reference, k=6) < local_outlier_factor(
            outlier, reference, k=6
        )
