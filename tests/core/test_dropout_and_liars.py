"""Tests for validator dropout (paper footnote 1) and malicious voters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baffle import BaffleConfig, BaffleDefense, ValidatorPool
from repro.core.validation import ConstantVoteValidator
from repro.nn.models import make_mlp


@pytest.fixture
def model(rng):
    return make_mlp(2, 2, rng, hidden=(4,))


def all_reject_pool(n):
    return ValidatorPool({i: ConstantVoteValidator(1) for i in range(n)})


class TestValidatorDropout:
    def test_full_dropout_invalid(self):
        with pytest.raises(ValueError):
            BaffleConfig(dropout_rate=1.0)

    def test_negative_dropout_invalid(self):
        with pytest.raises(ValueError):
            BaffleConfig(dropout_rate=-0.1)

    def test_silent_validators_cast_no_vote(self, model, rng):
        config = BaffleConfig(
            lookback=5, quorum=5, num_validators=10, mode="clients",
            dropout_rate=0.95,
        )
        defense = BaffleDefense(config, all_reject_pool(10))
        decision = defense.review(model, 0, rng)
        # with ~95% dropout, far fewer than 10 votes arrive
        assert decision.num_validators < 10

    def test_dropout_defaults_to_accept(self, model, rng):
        """Footnote 1: absent votes cannot reject — the round passes."""
        config = BaffleConfig(
            lookback=5, quorum=5, num_validators=10, mode="clients",
            dropout_rate=0.95,
        )
        defense = BaffleDefense(config, all_reject_pool(10))
        accepted = [defense.review(model, r, rng).accepted for r in range(20)]
        # with dropout 0.95, reaching 5 reject votes is very unlikely
        assert np.mean(accepted) > 0.9

    def test_zero_dropout_all_vote(self, model, rng):
        config = BaffleConfig(
            lookback=5, quorum=5, num_validators=10, mode="clients",
        )
        defense = BaffleDefense(config, all_reject_pool(10))
        decision = defense.review(model, 0, rng)
        assert decision.num_validators == 10
        assert not decision.accepted


class TestMaliciousVotersInScenarios:
    def test_config_validation(self):
        from repro.experiments.configs import ExperimentConfig

        with pytest.raises(ValueError):
            ExperimentConfig(malicious_validators=-1)
        with pytest.raises(ValueError):
            ExperimentConfig(malicious_vote_strategy="bogus")

    def test_dos_liars_in_pool(self, fast_detection_run):
        """Scenario with DoS voters still detects and bounds FP."""
        stats = fast_detection_run(malicious_validators=2,
                                   malicious_vote_strategy="dos")
        assert stats.fn_rate == 0.0
        assert stats.fp_rate <= 0.4

    def test_shield_liars_in_pool(self, fast_detection_run):
        stats = fast_detection_run(malicious_validators=2,
                                   malicious_vote_strategy="shield")
        assert stats.fn_rate <= 0.5


@pytest.fixture
def fast_detection_run():
    """Run the fast stable scenario with config overrides, return stats."""
    from repro.experiments.configs import ExperimentConfig
    from repro.experiments.metrics import detection_stats
    from repro.experiments.scenarios import run_stable_scenario

    base = ExperimentConfig(
        dataset="cifar", client_share=0.9, num_clients=12, pool_size=900,
        test_size=150, clients_per_round=5, pretrain_rounds=35, pretrain_lr=0.1,
        lookback=8, quorum=3, num_validators=5, defense_start=10,
        total_rounds=20, attack_rounds=(13, 17), poison_samples=40,
        attack_epochs=4, hidden=(32,),
    )

    def run(**overrides):
        config = base.with_updates(**overrides)
        result = run_stable_scenario(config, seed=0)
        return detection_stats(
            result.records, result.injection_rounds, result.defense_start
        )

    return run
