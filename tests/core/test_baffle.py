"""Unit tests for the BaFFLe feedback loop (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baffle import BaffleConfig, BaffleDefense, ValidatorPool
from repro.core.validation import ConstantVoteValidator
from repro.data.dataset import Dataset
from repro.nn.models import make_mlp


@pytest.fixture
def model(rng):
    return make_mlp(2, 2, rng, hidden=(4,))


def constant_pool(votes: dict[int, int]) -> ValidatorPool:
    return ValidatorPool({cid: ConstantVoteValidator(v) for cid, v in votes.items()})


class TestBaffleConfig:
    def test_defaults_valid(self):
        BaffleConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lookback": 2},
            {"mode": "bogus"},
            {"quorum": 0},
            {"quorum": 12, "num_validators": 10, "mode": "clients"},
            {"num_validators": 0, "mode": "clients"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BaffleConfig(**kwargs)

    def test_server_mode_ignores_quorum_bounds(self):
        BaffleConfig(mode="server", quorum=99)


class TestConstructionRequirements:
    def test_clients_mode_needs_pool(self):
        with pytest.raises(ValueError):
            BaffleDefense(BaffleConfig(mode="clients"), validator_pool=None)

    def test_server_mode_needs_server_validator(self):
        pool = constant_pool({0: 0})
        with pytest.raises(ValueError):
            BaffleDefense(BaffleConfig(mode="server"), pool, server_validator=None)


class TestQuorumRule:
    def make_defense(self, votes, quorum, mode="clients", server_vote=None):
        pool = constant_pool(votes)
        server = ConstantVoteValidator(server_vote) if server_vote is not None else None
        config = BaffleConfig(
            lookback=5,
            quorum=quorum,
            num_validators=len(votes),
            mode=mode,
        )
        return BaffleDefense(config, pool, server)

    def test_rejects_at_quorum(self, model, rng):
        defense = self.make_defense({i: 1 for i in range(5)}, quorum=5)
        decision = defense.review(model, 0, rng)
        assert not decision.accepted
        assert decision.reject_votes == 5

    def test_accepts_below_quorum(self, model, rng):
        votes = {0: 1, 1: 1, 2: 0, 3: 0, 4: 0}
        defense = self.make_defense(votes, quorum=3)
        assert defense.review(model, 0, rng).accepted

    def test_server_vote_counts_in_both_mode(self, model, rng):
        votes = {i: 1 if i < 4 else 0 for i in range(5)}  # 4 rejects
        defense = self.make_defense(votes, quorum=5, mode="both", server_vote=1)
        decision = defense.review(model, 0, rng)
        assert not decision.accepted  # 4 + server = 5 >= q
        assert decision.server_vote == 1

    def test_server_only_mode_single_vote_decides(self, model, rng):
        defense = self.make_defense({0: 0}, quorum=1, mode="server", server_vote=1)
        assert not defense.review(model, 0, rng).accepted
        defense = self.make_defense({0: 1}, quorum=1, mode="server", server_vote=0)
        assert defense.review(model, 0, rng).accepted

    def test_start_round_auto_accepts(self, model, rng):
        pool = constant_pool({i: 1 for i in range(5)})
        config = BaffleConfig(
            lookback=5, quorum=1, num_validators=5, mode="clients", start_round=10
        )
        defense = BaffleDefense(config, pool)
        assert defense.review(model, 9, rng).accepted
        assert not defense.review(model, 10, rng).accepted

    def test_decision_reports_client_votes(self, model, rng):
        votes = {0: 1, 1: 0, 2: 1}
        defense = self.make_defense(votes, quorum=3)
        decision = defense.review(model, 0, rng)
        assert decision.client_votes == votes


class TestHistoryMaintenance:
    def test_accepted_models_extend_history(self, model, rng):
        pool = constant_pool({0: 0, 1: 0})
        config = BaffleConfig(lookback=4, quorum=2, num_validators=2, mode="clients")
        defense = BaffleDefense(config, pool)
        defense.record_outcome(model, accepted=True)
        assert len(defense.history) == 1

    def test_rejected_models_do_not_extend_history(self, model, rng):
        pool = constant_pool({0: 0, 1: 0})
        config = BaffleConfig(lookback=4, quorum=2, num_validators=2, mode="clients")
        defense = BaffleDefense(config, pool)
        defense.record_outcome(model, accepted=False)
        assert len(defense.history) == 0

    def test_history_bounded_by_lookback(self, model, rng):
        pool = constant_pool({0: 0})
        config = BaffleConfig(lookback=4, quorum=1, num_validators=1, mode="clients")
        defense = BaffleDefense(config, pool)
        for _ in range(10):
            defense.record_outcome(model, accepted=True)
        assert len(defense.history) == 5  # lookback + 1

    def test_prime_seeds_history(self, model):
        pool = constant_pool({0: 0})
        config = BaffleConfig(lookback=4, quorum=1, num_validators=1, mode="clients")
        defense = BaffleDefense(config, pool)
        defense.prime(model)
        assert len(defense.history) == 1


class TestValidatorPool:
    def test_sample_ids_distinct(self, rng):
        pool = constant_pool({i: 0 for i in range(20)})
        ids = pool.sample_ids(10, rng)
        assert len(set(ids)) == 10

    def test_sample_too_many_rejected(self, rng):
        pool = constant_pool({0: 0})
        with pytest.raises(ValueError):
            pool.sample_ids(2, rng)

    def test_from_datasets_builds_misclassification_validators(self, rng):
        from repro.core.validation import MisclassificationValidator

        data = Dataset(rng.normal(size=(10, 2)), rng.integers(0, 2, 10), 2)
        pool = ValidatorPool.from_datasets({0: data})
        assert isinstance(pool.get(0), MisclassificationValidator)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ValidatorPool({})

    def test_contains(self):
        pool = constant_pool({3: 0})
        assert 3 in pool
        assert 4 not in pool
