"""Unit tests for repro.core.history.ModelHistory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.history import ModelHistory
from repro.nn.models import make_mlp


@pytest.fixture
def model(rng):
    return make_mlp(2, 2, rng, hidden=(4,))


class TestModelHistory:
    def test_versions_increase_monotonically(self, model):
        history = ModelHistory(max_models=3)
        versions = [history.append(model) for _ in range(5)]
        assert versions == [0, 1, 2, 3, 4]

    def test_bounded_retention(self, model):
        history = ModelHistory(max_models=3)
        for _ in range(5):
            history.append(model)
        assert len(history) == 3
        assert history.versions() == [2, 3, 4]

    def test_entries_oldest_first(self, model):
        history = ModelHistory(max_models=4)
        for _ in range(4):
            history.append(model)
        versions = [v for v, _ in history.entries()]
        assert versions == sorted(versions)

    def test_append_stores_snapshot(self, model):
        history = ModelHistory(max_models=2)
        history.append(model)
        model.set_flat(model.get_flat() + 1.0)
        _, stored = history.latest()
        assert not np.allclose(stored.get_flat(), model.get_flat())

    def test_is_full(self, model):
        history = ModelHistory(max_models=2)
        assert not history.is_full
        history.append(model)
        history.append(model)
        assert history.is_full

    def test_latest_on_empty_raises(self):
        with pytest.raises(LookupError):
            ModelHistory(max_models=2).latest()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ModelHistory(max_models=0)
