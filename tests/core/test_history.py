"""Unit tests for repro.core.history.ModelHistory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.history import ModelHistory
from repro.nn.models import make_mlp


@pytest.fixture
def model(rng):
    return make_mlp(2, 2, rng, hidden=(4,))


class TestModelHistory:
    def test_versions_increase_monotonically(self, model):
        history = ModelHistory(max_models=3)
        versions = [history.append(model) for _ in range(5)]
        assert versions == [0, 1, 2, 3, 4]

    def test_bounded_retention(self, model):
        history = ModelHistory(max_models=3)
        for _ in range(5):
            history.append(model)
        assert len(history) == 3
        assert history.versions() == [2, 3, 4]

    def test_entries_oldest_first(self, model):
        history = ModelHistory(max_models=4)
        for _ in range(4):
            history.append(model)
        versions = [v for v, _ in history.entries()]
        assert versions == sorted(versions)

    def test_append_stores_snapshot(self, model):
        history = ModelHistory(max_models=2)
        history.append(model)
        model.set_flat(model.get_flat() + 1.0)
        _, stored = history.latest()
        assert not np.allclose(stored.get_flat(), model.get_flat())

    def test_is_full(self, model):
        history = ModelHistory(max_models=2)
        assert not history.is_full
        history.append(model)
        history.append(model)
        assert history.is_full

    def test_latest_on_empty_raises(self):
        with pytest.raises(LookupError):
            ModelHistory(max_models=2).latest()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ModelHistory(max_models=0)


def _distinct(model, rng):
    """A clone with perturbed weights (distinct store content per commit)."""
    clone = model.clone()
    flat = clone.get_flat()
    clone.set_flat(flat + rng.normal(0.0, 1e-3, size=flat.shape))
    return clone


class TestOptimisticCommits:
    """The rollback-aware API behind the pipelined round loop."""

    def test_commit_optimistic_enters_window_immediately(self, model, rng):
        history = ModelHistory(max_models=3)
        history.append(model)
        history.stage_candidate(_distinct(model, rng))
        version = history.commit_optimistic()
        assert history.versions() == [0, version]
        assert history.provisional_versions() == [version]

    def test_finalize_promotes_and_releases_displaced(self, model, rng):
        history = ModelHistory(max_models=2)
        evicted: list[int] = []
        history.add_eviction_listener(evicted.append)
        history.append(model)
        history.append(model)  # window full: [0, 1]
        history.stage_candidate(_distinct(model, rng))
        version = history.commit_optimistic()  # displaces 0 — deferred
        assert evicted == []
        assert 0 in history.store  # parked, not released
        history.finalize(version)
        assert evicted == [0]
        assert 0 not in history.store
        assert history.provisional_versions() == []

    def test_rollback_restores_displaced_entries(self, model, rng):
        history = ModelHistory(max_models=2)
        evicted: list[int] = []
        history.add_eviction_listener(evicted.append)
        history.append(model)
        history.append(model)
        before = history.versions()
        anchor = history.newest_version()
        for _ in range(2):
            history.stage_candidate(_distinct(model, rng))
            history.commit_optimistic()
        assert history.versions() == [2, 3]
        rolled = history.rollback_to(anchor)
        assert rolled == [2, 3]
        assert history.versions() == before
        assert evicted == [3, 2]  # withdrawn (listener order: newest first)
        assert 2 not in history.store and 3 not in history.store
        assert 0 in history.store and 1 in history.store

    def test_rollback_to_intermediate_version(self, model, rng):
        history = ModelHistory(max_models=4)
        history.append(model)
        history.stage_candidate(_distinct(model, rng))
        first = history.commit_optimistic()
        history.stage_candidate(_distinct(model, rng))
        second = history.commit_optimistic()
        assert history.rollback_to(first) == [second]
        assert history.versions() == [0, first]
        assert history.provisional_versions() == [first]

    def test_rollback_bumps_epoch_and_tags_versions(self, model, rng):
        history = ModelHistory(max_models=3)
        history.append(model)
        assert history.epoch == 0
        assert history.version_epoch(0) == 0
        history.stage_candidate(_distinct(model, rng))
        version = history.commit_optimistic()
        history.rollback_to(0)
        assert history.epoch == 1
        history.stage_candidate(_distinct(model, rng))
        retry = history.commit_optimistic()
        assert retry > version  # versions are never reused
        assert history.version_epoch(retry) == 1
        history.rollback_to(None)  # no provisional left after another look
        assert history.epoch == 2

    def test_empty_rollback_keeps_epoch(self, model):
        history = ModelHistory(max_models=3)
        history.append(model)
        assert history.rollback_to(None) == []
        assert history.epoch == 0

    def test_finalize_is_fifo(self, model, rng):
        history = ModelHistory(max_models=4)
        history.append(model)
        history.stage_candidate(_distinct(model, rng))
        first = history.commit_optimistic()
        history.stage_candidate(_distinct(model, rng))
        second = history.commit_optimistic()
        with pytest.raises(RuntimeError, match="oldest provisional"):
            history.finalize(second)
        history.finalize(first)
        history.finalize(second)

    def test_plain_commit_with_open_provisional_rejected(self, model, rng):
        history = ModelHistory(max_models=3)
        history.append(model)
        history.stage_candidate(_distinct(model, rng))
        history.commit_optimistic()
        with pytest.raises(RuntimeError, match="optimistic"):
            history.append(model)

    def test_commit_optimistic_without_stage_rejected(self):
        with pytest.raises(RuntimeError, match="staged"):
            ModelHistory(max_models=2).commit_optimistic()

    def test_provisional_suffix_deeper_than_window(self, model, rng):
        """A pipeline deeper than the look-back window parks provisional
        entries themselves; a full rollback still restores the original
        window exactly."""
        history = ModelHistory(max_models=2)
        history.append(model)
        history.append(model)
        before = history.versions()
        anchor = history.newest_version()
        for _ in range(3):  # provisional suffix exceeds max_models
            history.stage_candidate(_distinct(model, rng))
            history.commit_optimistic()
        assert len(history) == 2
        rolled = history.rollback_to(anchor)
        assert rolled == [2, 3, 4]
        assert history.versions() == before

    def test_straggler_reference_survives_rollback(self, model, rng):
        """An in-flight consumer's store reference keeps a withdrawn
        version readable until released (the deferred-release contract)."""
        history = ModelHistory(max_models=3)
        history.append(model)
        history.stage_candidate(_distinct(model, rng))
        version = history.commit_optimistic()
        history.store.acquire(version)  # the in-flight validator's hold
        history.rollback_to(0)
        assert version in history.store  # still resolvable for stragglers
        history.store.get(version)
        history.store.release(version)
        assert version not in history.store
