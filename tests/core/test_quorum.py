"""Unit tests for the quorum-robustness analysis (paper Sec. IV-B)."""

from __future__ import annotations

import pytest

from repro.core.quorum import (
    estimate_rho_from_votes,
    max_tolerable_malicious,
    quorum_bounds,
    recommended_quorum,
)


class TestQuorumBounds:
    def test_paper_formula(self):
        # n=10, n_M=2, rho=0.9: lower = 2 + 0.1*8 = 2.8, upper = 0.9*8 = 7.2
        lower, upper = quorum_bounds(10, 2, 0.9)
        assert lower == pytest.approx(2.8)
        assert upper == pytest.approx(7.2)

    def test_perfect_validators_reduce_to_simple_bounds(self):
        # rho=1: lower = n_M, upper = n - n_M
        lower, upper = quorum_bounds(10, 3, 1.0)
        assert lower == 3.0
        assert upper == 7.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            quorum_bounds(0, 0, 0.5)
        with pytest.raises(ValueError):
            quorum_bounds(10, 10, 0.5)
        with pytest.raises(ValueError):
            quorum_bounds(10, 2, 1.5)


class TestRecommendedQuorum:
    def test_matches_upper_bound_floor(self):
        assert recommended_quorum(10, 2, 0.9) == 7

    def test_empty_range_rejected(self):
        # rho = 0.5, n_M = 3: lower = 3 + 0.5*7 = 6.5, upper = 3.5 -> empty
        with pytest.raises(ValueError):
            recommended_quorum(10, 3, 0.5)


class TestMaxTolerableMalicious:
    def test_paper_examples(self):
        """Sec. VI-C: rho=0.4 -> n_M < 3.75; rho=0.5 -> n_M < 3.33 (wait:
        the paper plugs 1-rho as the correct fraction; we follow the printed
        formula (1-rho)n/(2-rho) with its rho convention)."""
        assert max_tolerable_malicious(10, 0.4) == pytest.approx(3.75)
        assert max_tolerable_malicious(10, 0.5) == pytest.approx(10 / 3, rel=1e-3)

    def test_perfect_rho_tolerates_none_by_formula(self):
        assert max_tolerable_malicious(10, 1.0) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            max_tolerable_malicious(0, 0.5)
        with pytest.raises(ValueError):
            max_tolerable_malicious(10, -0.1)


class TestRhoEstimation:
    def test_minimum_reject_share(self):
        # worst observed injection got 5 of 10 votes -> rho = 0.5
        assert estimate_rho_from_votes([9, 7, 5, 10], 10) == 0.5

    def test_all_detected_by_everyone(self):
        assert estimate_rho_from_votes([10, 10], 10) == 1.0

    def test_empty_votes_rejected(self):
        with pytest.raises(ValueError):
            estimate_rho_from_votes([], 10)

    def test_out_of_range_votes_rejected(self):
        with pytest.raises(ValueError):
            estimate_rho_from_votes([11], 10)
        with pytest.raises(ValueError):
            estimate_rho_from_votes([-1], 10)
