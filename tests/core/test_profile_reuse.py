"""Regression: an accepted candidate's error profile is computed once.

Before the fix, ``MisclassificationValidator.explain`` profiled the
candidate, the server committed the candidate into the history, and the
next round the validator recomputed the *same* model's profile from
scratch because the cache key (the history version) did not exist at
explain time.  ``note_committed`` re-files the profile under the version
assigned at commit time.
"""

from __future__ import annotations

import numpy as np

from repro.core import validation as validation_mod
from repro.core.baffle import BaffleConfig, BaffleDefense
from repro.core.validation import MisclassificationValidator
from repro.nn.models import make_mlp


def _perturbed(model, rng, scale=1e-3):
    clone = model.clone()
    flat = clone.get_flat()
    clone.set_flat(flat + rng.normal(0.0, scale, size=flat.shape))
    return clone


def build_server_defense(tiny_dataset, stack_profiles: bool = True):
    validator = MisclassificationValidator(
        tiny_dataset, min_history=4, stack_profiles=stack_profiles
    )
    defense = BaffleDefense(
        BaffleConfig(lookback=4, mode="server"), server_validator=validator
    )
    return defense, validator


class TestCommittedProfileReuse:
    def test_accepted_candidate_profile_not_recomputed(
        self, tiny_dataset, tiny_mlp, rng, monkeypatch
    ):
        profiled = []
        real = validation_mod.model_error_profile

        def counting(model, dataset, normalize="dataset"):
            profiled.append(model)
            return real(model, dataset, normalize=normalize)

        monkeypatch.setattr(validation_mod, "model_error_profile", counting)

        defense, _ = build_server_defense(tiny_dataset, stack_profiles=False)
        for _ in range(5):  # fill the look-back window with trusted models
            defense.prime(_perturbed(tiny_mlp, rng))

        first = _perturbed(tiny_mlp, rng)
        defense.review(first, round_idx=0, rng=rng)
        first_round_profiles = len(profiled)
        assert first_round_profiles == 6  # 5 history models + the candidate
        defense.record_outcome(first, accepted=True)

        second = _perturbed(tiny_mlp, rng)
        defense.review(second, round_idx=1, rng=rng)
        # History now holds 4 old models (profiles cached) plus the committed
        # ``first`` (profile re-filed at commit time): only the new candidate
        # needs a forward pass.
        assert len(profiled) == first_round_profiles + 1
        assert profiled[-1] is second

    def test_reuse_holds_under_stacked_profiles(
        self, tiny_dataset, tiny_mlp, rng, monkeypatch
    ):
        """With profile stacking on, the cold round runs one stacked pass
        and warm rounds still profile only the fresh candidate."""
        per_model = []
        stacked_calls = []
        real_single = validation_mod.model_error_profile
        real_stacked = validation_mod.stacked_error_profiles

        def counting_single(model, dataset, normalize="dataset"):
            per_model.append(model)
            return real_single(model, dataset, normalize=normalize)

        def counting_stacked(models, dataset, normalize="dataset"):
            stacked_calls.append(list(models))
            return real_stacked(models, dataset, normalize=normalize)

        monkeypatch.setattr(validation_mod, "model_error_profile", counting_single)
        monkeypatch.setattr(
            validation_mod, "stacked_error_profiles", counting_stacked
        )

        defense, _ = build_server_defense(tiny_dataset, stack_profiles=True)
        for _ in range(5):
            defense.prime(_perturbed(tiny_mlp, rng))

        first = _perturbed(tiny_mlp, rng)
        defense.review(first, round_idx=0, rng=rng)
        # One stacked pass covering the 5 history models + the candidate.
        assert len(stacked_calls) == 1
        assert len(stacked_calls[0]) == 6
        assert per_model == []
        defense.record_outcome(first, accepted=True)

        second = _perturbed(tiny_mlp, rng)
        defense.review(second, round_idx=1, rng=rng)
        # Warm cache: nothing left to stack, only the new candidate is
        # profiled — the committed round's profile was re-filed, not redone.
        assert len(stacked_calls) == 1
        assert per_model == [second]

    def test_rejected_candidate_profile_is_dropped(
        self, tiny_dataset, tiny_mlp, rng
    ):
        defense, validator = build_server_defense(tiny_dataset)
        for _ in range(5):
            defense.prime(_perturbed(tiny_mlp, rng))
        candidate = _perturbed(tiny_mlp, rng)
        defense.review(candidate, round_idx=0, rng=rng)
        assert validator._pending_candidate is not None
        defense.record_outcome(candidate, accepted=False)
        # Rejected candidates never enter the history, so nothing is filed;
        # the pending slot is cleared by the next explain() call.
        versions_before = set(validator._profile_cache)
        defense.review(_perturbed(tiny_mlp, rng), round_idx=1, rng=rng)
        assert set(validator._profile_cache) == versions_before
        assert validator._pending_candidate is not None  # the new candidate

    def test_note_committed_ignores_foreign_candidates(
        self, tiny_dataset, tiny_mlp, rng
    ):
        validator = MisclassificationValidator(tiny_dataset, min_history=4)
        validator.note_committed(tiny_mlp, version=99)  # nothing pending
        assert 99 not in validator._profile_cache
